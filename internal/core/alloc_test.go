package core

import (
	"testing"

	"kmachine/internal/obs"
)

// Allocation-regression fence for the persistent-worker engine: a
// steady-state superstep — workers stepping, sparse link accounting,
// count-then-place inbox assembly in the loopback transport — must not
// allocate. The test runs a k=8 cluster for many supersteps with a
// fixed traffic pattern and asserts the whole run stays under a budget
// that only covers one-time setup (engine state, transport buffers,
// machine closures, PerSuperstep growth); if a per-superstep allocation
// sneaks back into the hot path it blows the budget immediately
// (supersteps × k ≈ 1600 extra allocations).

type allocMsg struct{ payload [2]int64 }

func runSteadyCluster(tb testing.TB, supersteps int, drop bool, rec obs.Recorder) {
	tb.Helper()
	const k = 8
	c := NewCluster(Config{K: k, Bandwidth: 2, Seed: 7, DropPerSuperstep: drop, Recorder: rec},
		func(id MachineID) Machine[allocMsg] {
			buf := make([]Envelope[allocMsg], 0, 2)
			return MachineFunc[allocMsg](func(ctx *StepContext, inbox []Envelope[allocMsg]) ([]Envelope[allocMsg], bool) {
				if ctx.Superstep >= supersteps {
					return nil, true
				}
				// Fixed pattern: one envelope to each ring neighbour.
				buf = buf[:0]
				buf = append(buf,
					Envelope[allocMsg]{To: MachineID((int(ctx.Self) + 1) % ctx.K), Words: 3},
					Envelope[allocMsg]{To: MachineID((int(ctx.Self) + ctx.K - 1) % ctx.K), Words: 2},
				)
				return buf, false
			})
		})
	st, err := c.Run()
	if err != nil {
		tb.Fatal(err)
	}
	if st.Supersteps != supersteps {
		tb.Fatalf("ran %d supersteps, want %d", st.Supersteps, supersteps)
	}
}

func TestSteadyStateSuperstepAllocBudget(t *testing.T) {
	const supersteps = 200
	// One run = setup + 200 steady supersteps. The recorded footprint of
	// the engine is ~60 allocations per run (cluster, engine state,
	// goroutine closures, transport buffers, machine buffers); 150
	// leaves headroom for toolchain drift while still failing hard if
	// even one allocation per superstep (200 extra) returns.
	const budget = 150.0
	got := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, true, nil)
	})
	if got > budget {
		t.Errorf("steady-state run allocated %.0f times, budget %.0f — a per-superstep allocation crept into the engine hot path", got, budget)
	}

	// With PerSuperstep retention the only extra growth allowed is the
	// stats slice itself (amortised doubling).
	withStats := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, false, nil)
	})
	if withStats > budget+16 {
		t.Errorf("PerSuperstep retention allocated %.0f times, budget %.0f", withStats, budget+16)
	}
}

// runSteadyStreamCluster is runSteadyCluster on the streaming schedule:
// the same ring traffic, but each machine hands its two per-neighbour
// batches to the transport mid-Step through the emitter. Exercises the
// whole streaming hot path — Emitter reset/validate/record, the engine's
// streamStep fold, and the loopback transport's Begin/Send/Finish.
func runSteadyStreamCluster(tb testing.TB, supersteps int, drop bool, rec obs.Recorder) {
	tb.Helper()
	const k = 8
	c := NewCluster(Config{K: k, Bandwidth: 2, Seed: 7, DropPerSuperstep: drop, Recorder: rec, Streaming: true},
		func(id MachineID) Machine[allocMsg] {
			next := make([]Envelope[allocMsg], 0, 1)
			prev := make([]Envelope[allocMsg], 0, 1)
			out := make([]Envelope[allocMsg], 0, 2)
			return MachineFunc[allocMsg](func(ctx *StepContext, inbox []Envelope[allocMsg]) ([]Envelope[allocMsg], bool) {
				if ctx.Superstep >= supersteps {
					return nil, true
				}
				nj := MachineID((int(ctx.Self) + 1) % ctx.K)
				pj := MachineID((int(ctx.Self) + ctx.K - 1) % ctx.K)
				next = append(next[:0], Envelope[allocMsg]{To: nj, Words: 3})
				prev = append(prev[:0], Envelope[allocMsg]{To: pj, Words: 2})
				out = out[:0]
				out = EmitOrAppend(ctx, nj, next, out)
				out = EmitOrAppend(ctx, pj, prev, out)
				return out, false
			})
		})
	st, err := c.Run()
	if err != nil {
		tb.Fatal(err)
	}
	if st.Supersteps != supersteps {
		tb.Fatalf("ran %d supersteps, want %d", st.Supersteps, supersteps)
	}
}

// The streaming schedule owes the same zero-allocation steady state as
// lockstep: emitters, their per-superstep resets, the streamStep
// accounting fold, and the loopback streamer's staging must all recycle.
// Budget headroom matches the lockstep fence; a single per-superstep
// allocation (200 extra) fails immediately.
func TestStreamingSuperstepAllocBudget(t *testing.T) {
	const supersteps = 200
	const budget = 170.0 // lockstep budget + one-time emitter/streamer setup
	got := testing.AllocsPerRun(3, func() {
		runSteadyStreamCluster(t, supersteps, true, nil)
	})
	if got > budget {
		t.Errorf("streaming steady-state run allocated %.0f times, budget %.0f — a per-superstep allocation crept into the streaming hot path", got, budget)
	}
}

// And with a live recorder: Record writes into the preallocated ring, so
// instrumenting a streaming run must not add per-superstep allocations
// either.
func TestStreamingSuperstepAllocBudgetWithRecorder(t *testing.T) {
	const supersteps = 200
	const budget = 170.0
	tr := obs.NewTrace(4096, 8)
	got := testing.AllocsPerRun(3, func() {
		runSteadyStreamCluster(t, supersteps, true, tr)
	})
	if got > budget {
		t.Errorf("instrumented streaming run allocated %.0f times, budget %.0f — recording spans must not allocate", got, budget)
	}
	if c := tr.Counters(); c.Total == 0 {
		t.Fatal("recorder saw no spans — the instrumented streaming path did not run")
	}
}

// Streaming and lockstep must produce bit-identical Stats on identical
// traffic — the engine-level form of the schedule-invariance oracle.
func TestStreamingStatsMatchLockstep(t *testing.T) {
	run := func(streaming bool) *Stats {
		const k = 8
		cfg := Config{K: k, Bandwidth: 2, Seed: 7, Streaming: streaming}
		c := NewCluster(cfg, func(id MachineID) Machine[allocMsg] {
			buf := make([]Envelope[allocMsg], 0, 2)
			return MachineFunc[allocMsg](func(ctx *StepContext, inbox []Envelope[allocMsg]) ([]Envelope[allocMsg], bool) {
				if ctx.Superstep >= 20 {
					return nil, true
				}
				nj := MachineID((int(ctx.Self) + 1) % ctx.K)
				pj := MachineID((int(ctx.Self) + ctx.K - 1) % ctx.K)
				buf = append(buf[:0],
					Envelope[allocMsg]{To: nj, Words: 3},
					Envelope[allocMsg]{To: pj, Words: 2})
				out := EmitOrAppend(ctx, nj, buf[:1], nil)
				return EmitOrAppend(ctx, pj, buf[1:], out), false
			})
		})
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	lock, stream := run(false), run(true)
	if lock.Rounds != stream.Rounds || lock.Supersteps != stream.Supersteps ||
		lock.Messages != stream.Messages || lock.Words != stream.Words ||
		lock.MaxRecvWords != stream.MaxRecvWords {
		t.Errorf("streaming stats diverge from lockstep:\nlock   %+v\nstream %+v", lock, stream)
	}
}

// A live obs.Trace recorder must keep the hot path allocation-free too:
// Record writes into the trace's preallocated ring, so the only extra
// allocations allowed with the recorder ON are the engine's span
// bookkeeping — i.e. none. The trace is built once outside the measured
// runs so its ring doesn't count against the budget.
func TestSteadyStateSuperstepAllocBudgetWithRecorder(t *testing.T) {
	const supersteps = 200
	const budget = 150.0
	tr := obs.NewTrace(4096, 8)
	got := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, true, tr)
	})
	if got > budget {
		t.Errorf("instrumented steady-state run allocated %.0f times, budget %.0f — recording spans must not allocate", got, budget)
	}
	if c := tr.Counters(); c.Total == 0 {
		t.Fatal("recorder saw no spans — the instrumented path did not run")
	}
}
