package core

import (
	"testing"

	"kmachine/internal/obs"
)

// Allocation-regression fence for the persistent-worker engine: a
// steady-state superstep — workers stepping, sparse link accounting,
// count-then-place inbox assembly in the loopback transport — must not
// allocate. The test runs a k=8 cluster for many supersteps with a
// fixed traffic pattern and asserts the whole run stays under a budget
// that only covers one-time setup (engine state, transport buffers,
// machine closures, PerSuperstep growth); if a per-superstep allocation
// sneaks back into the hot path it blows the budget immediately
// (supersteps × k ≈ 1600 extra allocations).

type allocMsg struct{ payload [2]int64 }

func runSteadyCluster(tb testing.TB, supersteps int, drop bool, rec obs.Recorder) {
	tb.Helper()
	const k = 8
	c := NewCluster(Config{K: k, Bandwidth: 2, Seed: 7, DropPerSuperstep: drop, Recorder: rec},
		func(id MachineID) Machine[allocMsg] {
			buf := make([]Envelope[allocMsg], 0, 2)
			return MachineFunc[allocMsg](func(ctx *StepContext, inbox []Envelope[allocMsg]) ([]Envelope[allocMsg], bool) {
				if ctx.Superstep >= supersteps {
					return nil, true
				}
				// Fixed pattern: one envelope to each ring neighbour.
				buf = buf[:0]
				buf = append(buf,
					Envelope[allocMsg]{To: MachineID((int(ctx.Self) + 1) % ctx.K), Words: 3},
					Envelope[allocMsg]{To: MachineID((int(ctx.Self) + ctx.K - 1) % ctx.K), Words: 2},
				)
				return buf, false
			})
		})
	st, err := c.Run()
	if err != nil {
		tb.Fatal(err)
	}
	if st.Supersteps != supersteps {
		tb.Fatalf("ran %d supersteps, want %d", st.Supersteps, supersteps)
	}
}

func TestSteadyStateSuperstepAllocBudget(t *testing.T) {
	const supersteps = 200
	// One run = setup + 200 steady supersteps. The recorded footprint of
	// the engine is ~60 allocations per run (cluster, engine state,
	// goroutine closures, transport buffers, machine buffers); 150
	// leaves headroom for toolchain drift while still failing hard if
	// even one allocation per superstep (200 extra) returns.
	const budget = 150.0
	got := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, true, nil)
	})
	if got > budget {
		t.Errorf("steady-state run allocated %.0f times, budget %.0f — a per-superstep allocation crept into the engine hot path", got, budget)
	}

	// With PerSuperstep retention the only extra growth allowed is the
	// stats slice itself (amortised doubling).
	withStats := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, false, nil)
	})
	if withStats > budget+16 {
		t.Errorf("PerSuperstep retention allocated %.0f times, budget %.0f", withStats, budget+16)
	}
}

// A live obs.Trace recorder must keep the hot path allocation-free too:
// Record writes into the trace's preallocated ring, so the only extra
// allocations allowed with the recorder ON are the engine's span
// bookkeeping — i.e. none. The trace is built once outside the measured
// runs so its ring doesn't count against the budget.
func TestSteadyStateSuperstepAllocBudgetWithRecorder(t *testing.T) {
	const supersteps = 200
	const budget = 150.0
	tr := obs.NewTrace(4096, 8)
	got := testing.AllocsPerRun(3, func() {
		runSteadyCluster(t, supersteps, true, tr)
	})
	if got > budget {
		t.Errorf("instrumented steady-state run allocated %.0f times, budget %.0f — recording spans must not allocate", got, budget)
	}
	if c := tr.Counters(); c.Total == 0 {
		t.Fatal("recorder saw no spans — the instrumented path did not run")
	}
}
