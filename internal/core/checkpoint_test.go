package core

// White-box tests for the pluggable checkpoint sinks: both must hand
// back exactly what the newest Put stored, retain only the configured
// window, and never leave torn state behind — Latest() is what recovery
// restores from, so a stale or half-written blob there is silent data
// corruption downstream.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func checkSink(t *testing.T, s CheckpointSink) {
	t.Helper()
	if step, blob, err := s.Latest(); step != -1 || blob != nil || err != nil {
		t.Fatalf("empty sink Latest() = (%d, %v, %v), want (-1, nil, nil)", step, blob, err)
	}
	for step := 4; step <= 24; step += 5 {
		blob := []byte(fmt.Sprintf("cut-at-%d", step))
		if err := s.Put(step, blob); err != nil {
			t.Fatalf("Put(%d): %v", step, err)
		}
		// The caller's buffer is reused by the encoder; the sink must
		// have copied before we clobber it.
		for i := range blob {
			blob[i] = 0xFF
		}
		gotStep, got, err := s.Latest()
		if err != nil {
			t.Fatalf("Latest after Put(%d): %v", step, err)
		}
		if gotStep != step || !bytes.Equal(got, []byte(fmt.Sprintf("cut-at-%d", step))) {
			t.Fatalf("Latest = (%d, %q) after Put(%d)", gotStep, got, step)
		}
	}
}

func TestMemorySinkRetainsNewest(t *testing.T) {
	s := NewMemorySink(2)
	checkSink(t, s)
	if s.Puts() != 5 {
		t.Errorf("Puts() = %d after 5 puts", s.Puts())
	}
	var want int64
	for step := 4; step <= 24; step += 5 {
		want += int64(len(fmt.Sprintf("cut-at-%d", step)))
	}
	if s.Bytes() != want {
		t.Errorf("Bytes() = %d, want %d (counters cover all puts, not just the ring)", s.Bytes(), want)
	}
	if n := len(s.entries); n != 2 {
		t.Errorf("ring holds %d checkpoints, want 2", n)
	}
}

func TestFileSinkRetainsNewestAtomically(t *testing.T) {
	dir := t.TempDir()
	s := NewFileSink(dir)
	checkSink(t, s)
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.kmcp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("dir holds %d checkpoint files %v, want 2", len(files), files)
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
		t.Errorf("torn temp files left behind: %v", tmp)
	}
	// A second sink over the same directory — a restarted process —
	// sees the same newest checkpoint.
	if step, blob, err := NewFileSink(dir).Latest(); err != nil || step != 24 || !bytes.Equal(blob, []byte("cut-at-24")) {
		t.Errorf("reopened sink Latest() = (%d, %q, %v), want (24, \"cut-at-24\", nil)", step, blob, err)
	}
}

func TestFileSinkLatestIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewFileSink(dir)
	if err := s.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"notes.txt", "ckpt-junk.kmcp", "ckpt-00000099.kmcp.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if step, blob, err := s.Latest(); err != nil || step != 7 || !bytes.Equal(blob, []byte("seven")) {
		t.Errorf("Latest() = (%d, %q, %v) amid foreign files, want (7, \"seven\", nil)", step, blob, err)
	}
}
