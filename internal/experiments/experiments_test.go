package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode:
// each must produce a non-empty, well-formed table and print cleanly.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("experiment failed: %v", err)
			}
			if table.ID != r.ID {
				t.Errorf("table ID %q, want %q", table.ID, r.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(table.Header))
				}
			}
			var buf bytes.Buffer
			table.Fprint(&buf)
			if !strings.Contains(buf.String(), table.Title) {
				t.Error("printed table missing title")
			}
		})
	}
}

func TestFitExponent(t *testing.T) {
	// y = 5 x^{-2} exactly.
	xs := []float64{2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 / (x * x)
	}
	if got := fitExponent(xs, ys); math.Abs(got+2) > 1e-9 {
		t.Errorf("fitExponent = %g, want -2", got)
	}
	if !math.IsNaN(fitExponent([]float64{1}, []float64{1})) {
		t.Error("single point fit should be NaN")
	}
}

// TestE2SpeedupDirection asserts the headline ordering: on dense inputs
// the §3.2 algorithm beats the conversion baseline at every k.
func TestE2SpeedupDirection(t *testing.T) {
	table, err := E2Triangles(Config{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E2 row reports incorrect enumeration: %v", row)
		}
		sp := strings.TrimSuffix(row[5], "x")
		v, err := strconv.ParseFloat(sp, 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[5])
		}
		if v < 1 {
			t.Errorf("baseline faster than algorithm at k=%s (%sx)", row[2], sp)
		}
	}
}

// TestE4ShapeDecreasing asserts that revealed paths shrink as k grows.
func TestE4ShapeDecreasing(t *testing.T) {
	table, err := E4RevealedPaths(Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, row := range table.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if v > prev*1.5 {
			t.Errorf("revealed paths increased with k: %v after %v", v, prev)
		}
		prev = v
	}
}
