package experiments

import (
	"fmt"
	"sort"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

// E22Streaming measures the streaming-superstep schedule: machines that
// opt in hand finished per-peer batches to the transport mid-superstep,
// so frame encoding and socket writes overlap the remaining compute
// instead of queueing behind the barrier. The schedule is purely an
// engine/transport concern — §1.1 accounting happens before the
// transport ever sees a batch, so Stats, output hashes, and even
// bytes-on-wire are bit-identical with streaming on or off, and the
// table asserts all three.
//
// Method: for each (algo, k) the two schedules run interleaved
// (lockstep, streaming, lockstep, ...) over TCP sockets so drift in
// machine load hits both arms equally. Each rep is instrumented with an
// obs trace and scored by the trace's wall-clock extent (the superstep
// protocol only — deterministic input construction is identical in both
// arms and excluded). The table reports per-arm medians, the speedup,
// and the overlap gauge |union(compute) ∩ union(frame writes)| /
// |union(compute)| from the streaming run — the direct evidence that
// bytes moved while compute was still running (lockstep sits at ~0 by
// construction).
//
// The k=16 PageRank row doubles as the measurement for the rotated
// writer/reader dispatch order: with 15 peers per machine, a fixed
// dispatch order would serialise wakeups against peer 0's queue every
// superstep; rotation spreads the first-served peer across supersteps.
func E22Streaming(cfg Config) (Table, error) {
	t := Table{
		ID:     "E22",
		Title:  "streaming supersteps: eager per-peer batches overlap compute with the wire (TCP)",
		Claim:  "the schedule is not the model: §1.1 accounting is pre-transport, so overlapping compute and communication changes wall-clock only — Stats, hashes, and wire bytes are bit-identical",
		Header: []string{"algo", "k", "n", "reps", "setup", "lockstep p50", "streaming p50", "speedup", "overlap", "stats+hash", "wire bytes"},
	}
	type job struct {
		name string
		k, n int
	}
	nPage, nSort := 1200, 1200
	reps := 5
	if cfg.Quick {
		nPage, nSort = 300, 300
		reps = 3
	}
	jobs := []job{
		{"pagerank", 8, nPage},
		{"pagerank", 16, nPage},
		{"dsort", 8, nSort},
	}
	for _, j := range jobs {
		entry, ok := algo.Lookup(j.name)
		if !ok {
			return t, fmt.Errorf("algorithm %q not registered", j.name)
		}
		var lockNs, streamNs []int64
		var lockRef, streamRef *algo.Outcome
		overlap, lockOverlap := 0.0, 0.0
		// Interleave the arms: rep i runs lockstep then streaming
		// back-to-back, so load drift is shared rather than biasing
		// whichever arm ran last.
		for rep := 0; rep < reps; rep++ {
			for _, streaming := range []bool{false, true} {
				// Size the ring for the whole run: ~3 frame spans per
				// directed pair per superstep, plus engine phases. A
				// wrapped ring would silently truncate both the wall
				// measurement and the overlap gauge.
				tr := obs.NewTrace(600*3*j.k*j.k+1<<16, j.k)
				prob := algo.Problem{N: j.n, K: j.k, Seed: cfg.Seed + 467,
					Recorder: tr, Streaming: streaming}
				out, err := entry.Run(prob, transport.TCP)
				if err != nil {
					return t, fmt.Errorf("%s/k=%d streaming=%v: %w", j.name, j.k, streaming, err)
				}
				spans := tr.Spans()
				wall := obs.Summarize(spans).WallNs
				if streaming {
					streamNs = append(streamNs, wall)
					if streamRef == nil {
						streamRef = out
						overlap = obs.Overlap(spans)
					}
				} else {
					lockNs = append(lockNs, wall)
					if lockRef == nil {
						lockRef = out
						lockOverlap = obs.Overlap(spans)
					}
				}
			}
		}
		statsSame := sameOutcome(lockRef, streamRef)
		wireSame := lockRef.Wire.BytesSent == streamRef.Wire.BytesSent &&
			lockRef.Wire.BytesRecv == streamRef.Wire.BytesRecv &&
			lockRef.Wire.FramesSent == streamRef.Wire.FramesSent &&
			lockRef.Wire.FramesRecv == streamRef.Wire.FramesRecv
		lockP50, streamP50 := medianNs(lockNs), medianNs(streamNs)
		t.Rows = append(t.Rows, []string{
			j.name, itoa(j.k), itoa(j.n), itoa(reps), ms(int64(lockRef.SetupTime)),
			ms(lockP50), ms(streamP50), ratio(lockP50, streamP50),
			fmt.Sprintf("%.1f%%", 100*overlap),
			fmt.Sprintf("%v", statsSame), fmt.Sprintf("%v", wireSame),
		})
		if j.name == "pagerank" && j.k == 8 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"pagerank/k=8 lockstep overlap gauge %.1f%% vs streaming %.1f%% — lockstep writes frames strictly after compute, streaming writes them during it",
				100*lockOverlap, 100*overlap))
			if !cfg.Quick {
				// Full mode matches the workload shape of BENCH_0004's E21
				// row (pagerank over TCP, n=1200, k=8), so the recorded
				// median is the trajectory baseline this PR's wire
				// scheduling — streaming plus the single-core inline writer
				// path — is measured against.
				t.Notes = append(t.Notes, fmt.Sprintf(
					"vs BENCH_0004 E21 pagerank/tcp wall %.1fms (pre-streaming pipeline): lockstep now %s (%.2fx), streaming %s (%.2fx)",
					bench0004PagerankTCPWallMs, ms(lockP50),
					bench0004PagerankTCPWallMs*1e6/float64(lockP50),
					ms(streamP50), bench0004PagerankTCPWallMs*1e6/float64(streamP50)))
			}
		}
	}
	t.Notes = append(t.Notes,
		"wall-clock is the obs trace's extent over the superstep protocol; input construction (identical in both arms) is excluded from both walls and reported in the setup column (first lockstep rep's SetupTime)",
		"stats+hash column asserts rounds/supersteps/messages/words/maxRecv and the canonical output hash are bit-identical across schedules; wire bytes asserts frame counts and on-wire bytes match too",
		"the k=16 pagerank row exercises the rotated writer/reader dispatch order (15 peers per machine)")
	return t, nil
}

// bench0004PagerankTCPWallMs is the E21 pagerank-over-TCP wall-clock
// BENCH_0004.json recorded for the full-size workload (n=1200, k=8) on
// the engine as of PR 6 — the committed trajectory point E22's
// full-mode note measures the new wire scheduling against.
const bench0004PagerankTCPWallMs = 375.90

// medianNs returns the median of the samples (0 for an empty slice).
func medianNs(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
