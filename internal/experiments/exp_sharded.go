package experiments

import (
	"fmt"
	"runtime"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/transport"
)

// E23ShardedSetup measures what the partition-local input path buys: the
// per-process cost of SETTING UP a k-machine computation, before the
// first superstep runs.
//
// §1.1 assumes the input is already distributed — each machine holds the
// adjacency rows of its Home-owned vertices, Õ((n+m)/k) of the graph —
// and the model's whole point is that no machine ever holds more. A
// runner that materialises the full graph and then carves out views
// (the repo's original setup path) silently violates that: every node
// process pays O(n+m) memory before computing anything, and the largest
// runnable n is bounded by the FULL graph fitting in one process.
//
// The experiment builds machine 0's input both ways at growing n —
// full materialisation (gen.Gnp + NewRVP + View) versus the sharded
// path (per-row canonical stream replayed, only local rows kept) — and
// records setup wall-clock and retained heap (HeapAlloc delta across
// forced GCs while the input is live). The sharded arm's retained heap
// should be ~k× smaller; the acceptance bar recorded in BENCH_0006.json
// is ≥4× at k=8.
//
// The last rows are the payoff: take the full arm's retained heap at
// the largest measured n as a per-process memory budget, then set up
// AND run PageRank at 8×n sharded — a graph no process here ever
// materialises — and show machine 0's setup stays inside that budget.
// Setup wall-clock for the sharded arm is NOT k× smaller: replaying the
// canonical stream costs O(n+m) time on every machine (a hashed random
// vertex partition gives no contiguous row ranges to skip to), so the
// win is memory and scan volume per process, not generation CPU.
func E23ShardedSetup(cfg Config) (Table, error) {
	t := Table{
		ID:     "E23",
		Title:  "partition-local setup: per-process retained heap and wall-clock, full vs sharded input",
		Claim:  "§1.1 input assumption: each machine starts with Õ((n+m)/k) of the graph — setup memory must scale with the shard, not the graph",
		Header: []string{"n", "avg deg", "mode", "setup wall", "retained heap", "heap vs full"},
	}
	const k = 8
	sizes := []int{12_500, 25_000, 50_000}
	bigFactor := 8
	if cfg.Quick {
		sizes = []int{2_000, 4_000}
	}

	var lastFullHeap, lastShardHeap uint64
	minRatio := 0.0
	for _, n := range sizes {
		prob := algo.Problem{N: n, K: k, Seed: cfg.Seed + 551}
		fullWall, fullHeap, err := measureSetup(prob)
		if err != nil {
			return t, fmt.Errorf("full setup n=%d: %w", n, err)
		}
		sharded := prob
		sharded.Sharded = true
		shWall, shHeap, err := measureSetup(sharded)
		if err != nil {
			return t, fmt.Errorf("sharded setup n=%d: %w", n, err)
		}
		r := float64(fullHeap) / float64(shHeap)
		if minRatio == 0 || r < minRatio {
			minRatio = r
		}
		lastFullHeap, lastShardHeap = fullHeap, shHeap
		t.Rows = append(t.Rows,
			[]string{itoa(n), "10", "full", ms(int64(fullWall)), mib(fullHeap), "1.00x"},
			[]string{itoa(n), "10", "sharded m0", ms(int64(shWall)), mib(shHeap), fmt.Sprintf("%.2fx", 1/r)},
		)
	}
	nMax := sizes[len(sizes)-1]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"retained heap is the HeapAlloc delta across forced GCs with machine 0's input live: the whole graph plus partition for the full arm, one machine's CSR shard for the sharded arm"))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"per-process setup heap reduction at k=%d: worst measured %.1fx, at n=%d %.1fx (acceptance bar >=4x): %v",
		k, minRatio, nMax, float64(lastFullHeap)/float64(lastShardHeap), minRatio >= 4))

	// Budget demonstration: PageRank at bigFactor×nMax, sharded. The
	// full arm's heap at nMax is the budget; machine 0's sharded setup
	// at the larger n must fit inside it.
	nBig := bigFactor * nMax
	bigProb := algo.Problem{N: nBig, K: k, Seed: cfg.Seed + 551, Sharded: true}
	bigWall, bigHeap, err := measureSetup(bigProb)
	if err != nil {
		return t, fmt.Errorf("sharded setup n=%d: %w", nBig, err)
	}
	t.Rows = append(t.Rows, []string{
		itoa(nBig), "10", "sharded m0", ms(int64(bigWall)), mib(bigHeap),
		fmt.Sprintf("%.2fx of budget", float64(bigHeap)/float64(lastFullHeap)),
	})
	entry, ok := algo.Lookup("pagerank")
	if !ok {
		return t, fmt.Errorf("pagerank not registered")
	}
	out, err := entry.Run(bigProb, transport.InMem)
	if err != nil {
		return t, fmt.Errorf("pagerank sharded n=%d: %w", nBig, err)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"budget: full setup at n=%d retains %s per process; sharded setup at n=%d (%dx larger) retains %s (%.2fx of budget, fits: %v)",
		nMax, mib(lastFullHeap), nBig, bigFactor, mib(bigHeap), float64(bigHeap)/float64(lastFullHeap), bigHeap <= lastFullHeap))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"pagerank at n=%d ran sharded end to end: setup %v + supersteps %v, %d rounds, output hash %016x",
		nBig, out.SetupTime.Round(time.Millisecond), out.ExecTime.Round(time.Millisecond), out.Stats.Rounds, out.Hash))
	t.Notes = append(t.Notes,
		"sharded setup wall-clock stays O(n+m): every machine replays the per-row canonical stream and keeps only its rows — the hashed partition trades generation CPU for the Õ((n+m)/k) memory footprint the model requires")
	return t, nil
}

// measureSetup builds machine 0's input for prob exactly the way a node
// process does (algo.GnpInput then MachineView) and returns the build
// wall-clock and the retained heap while the input is live. The suite
// may have run other experiments in this process first, so the baseline
// is taken after TWO GCs (sync.Pool victim caches clear one cycle late;
// a late-freed pool from an earlier TCP run would otherwise offset the
// delta, even to zero), and a degenerate zero reading is retried.
func measureSetup(prob algo.Problem) (time.Duration, uint64, error) {
	prob.EdgeP = 10 / float64(prob.N)
	var wall time.Duration
	var heap uint64
	for attempt := 0; attempt < 3 && heap == 0; attempt++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		in, err := algo.GnpInput(prob)
		if err != nil {
			return 0, 0, err
		}
		view, err := in.MachineView(0)
		if err != nil {
			return 0, 0, err
		}
		wall = time.Since(t0)
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			heap = after.HeapAlloc - before.HeapAlloc
		}
		runtime.KeepAlive(view)
		runtime.KeepAlive(in)
	}
	if heap == 0 {
		return wall, 0, fmt.Errorf("retained-heap measurement degenerate at n=%d (GC noise exceeded the input's footprint)", prob.N)
	}
	return wall, heap, nil
}

// mib renders a byte count as mebibytes.
func mib(b uint64) string {
	return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
}
