// Package experiments implements the reproduction harness: one runner
// per experiment in DESIGN.md's index (F1, E1–E25), each regenerating
// the series behind a claim of the paper. cmd/kmbench prints the tables
// that EXPERIMENTS.md records; the root bench_test.go exposes each
// experiment as a testing.B benchmark.
//
// All experiments report *shapes* — scaling exponents, algorithm
// orderings, crossovers — because the paper's claims are asymptotic
// (Õ/Ω̃). Measured absolute rounds depend on the bandwidth B and hidden
// constants and are reported for transparency, not for comparison with
// the paper (which measures nothing).
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is one experiment's result, printable as an aligned text table.
// The json tags fix the schema of kmbench -json (the BENCH_*.json
// trajectory format), so keep them stable.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string `json:"id"`
	// Title is a one-line description.
	Title string `json:"title"`
	// Claim cites the paper statement being reproduced.
	Claim string `json:"claim"`
	// Header and Rows hold the tabular data.
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Notes carry derived observations (fitted exponents, pass/fail of
	// the shape check).
	Notes []string `json:"notes,omitempty"`
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Fmarkdown renders the table as a Markdown section (kmbench -md, the
// generator of EXPERIMENTS.md).
func (t *Table) Fmarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// fitExponent least-squares fits y = c·x^a on log-log scale and returns a.
func fitExponent(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func f64(v float64) string { return fmt.Sprintf("%.3g", v) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func ratio(a, b int64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

// Config scales the experiments.
type Config struct {
	// Quick shrinks sizes for use inside benchmarks and smoke tests.
	Quick bool
	// Seed perturbs all randomness.
	Seed uint64
	// TracePath, when non-empty, asks E21 to write a Chrome
	// trace-event JSON timeline of its instrumented TCP PageRank run
	// to this file (open in chrome://tracing or Perfetto). Other
	// experiments ignore it.
	TracePath string
	// Streaming runs the registry-driven experiments (E19's substrate
	// matrix, E21's phase timings) with streaming supersteps, so a
	// whole-suite A/B against the lockstep schedule is one kmbench flag
	// away. Results and Stats are identical by construction — what
	// changes is the wall-clock and the phase timeline. E22 ignores it:
	// that experiment always runs both schedules.
	Streaming bool
	// CheckpointEvery runs E19's registry-driven substrate matrix with
	// per-superstep checkpointing armed at this cadence, so a
	// whole-suite "does checkpointing perturb any hash or Stat" audit
	// is one kmbench flag away. 0 leaves checkpointing off. E25 ignores
	// it: that experiment owns its cadence (it is the quantity under
	// measurement).
	CheckpointEvery int
	// CheckpointDir persists E19's in-process checkpoints to disk
	// (core.FileSink) instead of the in-memory ring, exercising the
	// file-backed sink under the same audit. Empty keeps checkpoints in
	// memory.
	CheckpointDir string
}

// Runner is one experiment entry point. Run returns an error instead
// of panicking on I/O or cluster failures, so harnesses (kmbench, the
// benchmarks) can name the failing experiment and keep their exit path
// clean rather than crashing the process.
type Runner struct {
	ID   string
	Name string
	Run  func(cfg Config) (Table, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"F1", "lower-bound graph (Figure 1)", F1LowerBoundGraph},
		{"E1", "PageRank rounds vs k (Thm 2+4)", E1PageRank},
		{"E2", "triangle rounds vs k (Thm 3+5)", E2Triangles},
		{"E3", "Lemma 4 PageRank separation", E3Separation},
		{"E4", "Lemma 5 revealed paths", E4RevealedPaths},
		{"E5", "congested clique (Cor 1)", E5CongestedClique},
		{"E6", "message complexity (Cor 2)", E6Messages},
		{"E7", "random routing (Lemma 13)", E7RandomRouting},
		{"E8", "distributed sorting (§1.3)", E8Sorting},
		{"E9", "induced edges (Prop 2)", E9InducedEdges},
		{"E10", "PageRank balance (Lemmas 12/14)", E10Balance},
		{"E11", "REP->RVP conversion (fn.3)", E11Conversion},
		{"E12", "open triads (§1.2)", E12Triads},
		{"E13", "sparse crossover (Thm 5)", E13Crossover},
		{"E14", "ablations (§1.3 mechanisms)", E14Ablations},
		{"E15", "GLBT gap audit", E15Gap},
		{"E16", "connectivity (§1.3 MST example)", E16Connectivity},
		{"E17", "information cost audit (Thm 1)", E17InfoCost},
		{"E18", "4-clique enumeration (§1.2 generalization)", E18Cliques4},
		{"E19", "substrate equivalence (registry × transports)", E19SubstrateMatrix},
		{"E20", "bytes-on-wire (model words vs physical bytes, v1 vs v2)", E20WireBytes},
		{"E21", "phase timings (compute/barrier/exchange share of wall)", E21PhaseTimings},
		{"E22", "streaming supersteps (overlap compute and wire)", E22Streaming},
		{"E23", "partition-local setup (per-process heap, full vs sharded)", E23ShardedSetup},
		{"E24", "resident job service (standing mesh vs build-per-job)", E24JobService},
		{"E25", "checkpoint overhead & recovery latency (resume vs restart-from-zero)", E25Recovery},
	}
}
