package experiments

import (
	"fmt"
	"math"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/infotheory"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
)

// F1LowerBoundGraph reproduces Figure 1: builds H at several sizes and
// checks the structural invariants plus the Lemma 4 closed forms against
// the expected-visit solver.
func F1LowerBoundGraph(cfg Config) (Table, error) {
	t := Table{
		ID:     "F1",
		Title:  "PageRank lower-bound graph H (Figure 1)",
		Claim:  "H has n = 4q+1 vertices, m = n-1 edges; PR(v_i) follows Lemma 4's two cases",
		Header: []string{"q", "n", "m", "eps", "PR(v|b=0)", "PR(v|b=1)", "solver max err", "sep ratio"},
	}
	qs := []int{16, 64, 256}
	if cfg.Quick {
		qs = []int{16, 64}
	}
	const eps = 0.15
	for _, q := range qs {
		bits := make([]bool, q)
		for i := range bits {
			bits[i] = i%2 == 0
		}
		lb := gen.LowerBoundGraphWithBits(bits, cfg.Seed+uint64(q))
		pr := graph.ExpectedVisitPageRank(lb.G, graph.PageRankOptions{Eps: eps, Tol: 1e-13, MaxIter: 10000})
		want0, want1 := gen.Lemma4Expected(eps, lb.G.N())
		var maxErr float64
		for i := 0; i < q; i++ {
			want := want0
			if bits[i] {
				want = want1
			}
			if e := math.Abs(pr[lb.V(i)] - want); e > maxErr {
				maxErr = e
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(q), itoa(lb.G.N()), itoa(lb.G.M()), f64(eps),
			f64(want0), f64(want1), f64(maxErr), fmt.Sprintf("%.3f", want1/want0),
		})
	}
	t.Notes = append(t.Notes,
		"separation ratio (1+q+q²+q³)/(1+q+q²/2) is a constant > 1 for every eps < 1 (Lemma 4)")
	return t, nil
}

// E1PageRank reproduces the paper's headline PageRank claim: Algorithm 1
// runs in Õ(n/k²) rounds (Theorem 4) against the Ω̃(n/k²) lower bound
// (Theorem 2), improving the Õ(n/k) baseline of Klauck et al.
func E1PageRank(cfg Config) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "PageRank round complexity vs k",
		Claim:  "Thm 4: Õ(n/k²) (Algorithm 1) vs Õ(n/k) (baseline [33]); Thm 2: Ω̃(n/k²)",
		Header: []string{"graph", "n", "k", "alg1 rounds", "baseline rounds", "speedup", "GLBT LB", "comm·k²/n"},
	}
	starN, gnpN := 4000, 3000
	iters := 40
	if cfg.Quick {
		starN, gnpN = 1500, 1200
		iters = 25
	}
	ks := []int{16, 32, 64}

	type family struct {
		name string
		g    *graph.Graph
	}
	families := []family{
		{"star", gen.Star(starN)},
		{"gnp", gen.Gnp(gnpN, 12/float64(gnpN), cfg.Seed+1)},
	}
	var commXs, commYs []float64
	for _, fam := range families {
		for _, k := range ks {
			p := partition.NewRVP(fam.g, k, cfg.Seed+uint64(k))
			b := core.DefaultBandwidth(fam.g.N())
			ccfg := core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + uint64(k) + 1}
			opts := pagerank.AlgorithmOne(0.15)
			opts.Tokens, opts.Iterations = 8, iters
			alg, err := pagerank.Run(p, ccfg, opts)
			if err != nil {
				return t, fmt.Errorf("E1 algorithm 1 on %s at k=%d: %w", fam.name, k, err)
			}
			bopts := pagerank.ConversionBaseline(0.15)
			bopts.Tokens, bopts.Iterations = 8, iters
			base, err := pagerank.Run(p, ccfg, bopts)
			if err != nil {
				return t, fmt.Errorf("E1 baseline on %s at k=%d: %w", fam.name, k, err)
			}
			lb := infotheory.PageRankBound(fam.g.N(), k, b*core.DefaultBandwidth(fam.g.N()))
			comm := alg.Stats.Rounds - 2*int64(alg.Iterations)
			if comm < 0 {
				comm = 0
			}
			norm := float64(comm) * float64(k*k) / float64(fam.g.N())
			t.Rows = append(t.Rows, []string{
				fam.name, itoa(fam.g.N()), itoa(k),
				i64(alg.Stats.Rounds), i64(base.Stats.Rounds),
				ratio(base.Stats.Rounds, alg.Stats.Rounds),
				f64(lb.Rounds), f64(norm),
			})
			if fam.name == "gnp" && comm > 0 {
				commXs = append(commXs, float64(k))
				commYs = append(commYs, float64(comm))
			}
		}
	}
	if len(commXs) >= 2 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"gnp comm-rounds ~ k^%.2f (Õ(n/k²) predicts -2; Õ(n/k) baseline would give -1)",
			fitExponent(commXs, commYs)))
	}
	t.Notes = append(t.Notes,
		"comm·k²/n column flat across k ⇒ the Õ(n/k²) shape holds; the additive 2·iterations floor is the Õ's polylog term",
		"on the benign gnp input the baseline can edge ahead (~2x volume from two-hop, little to aggregate): the paper's improvement is worst-case, and the star rows show the Θ(k)-sized gap")
	return t, nil
}

// E3Separation reproduces Lemma 4 end to end: the distributed Algorithm 1
// recovers the hidden direction bits of H from its PageRank estimates.
func E3Separation(cfg Config) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "Lemma 4 separation on H, recovered by the distributed algorithm",
		Claim:  "PR(v_i) differs by a constant factor between b_i = 0 and 1; a correct algorithm learns every b_i",
		Header: []string{"q", "tokens", "eps", "bits recovered", "accuracy"},
	}
	q := 48
	tokens := 2048
	if cfg.Quick {
		q, tokens = 24, 1024
	}
	for _, eps := range []float64{0.15, 0.3} {
		bits := make([]bool, q)
		for i := range bits {
			bits[i] = (i*7+3)%2 == 0
		}
		lb := gen.LowerBoundGraphWithBits(bits, cfg.Seed+7)
		p := partition.NewRVP(lb.G, 8, cfg.Seed+11)
		opts := pagerank.AlgorithmOne(eps)
		opts.Tokens = tokens
		res, err := pagerank.Run(p, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(lb.G.N()), Seed: cfg.Seed + 13}, opts)
		if err != nil {
			return t, fmt.Errorf("E3 separation at eps=%g: %w", eps, err)
		}
		want0, want1 := gen.Lemma4Expected(eps, lb.G.N())
		thresh := (want0 + want1) / 2
		correct := 0
		for i := 0; i < q; i++ {
			if (res.Estimate[lb.V(i)] > thresh) == bits[i] {
				correct++
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(q), itoa(tokens), f64(eps),
			fmt.Sprintf("%d/%d", correct, q),
			fmt.Sprintf("%.1f%%", 100*float64(correct)/float64(q)),
		})
	}
	t.Notes = append(t.Notes,
		"recovering the bits is what forces Ω̃(n/k²) rounds: the bits are Θ(n) bits of information no machine starts with (Lemmas 5, 7, 8)")
	return t, nil
}

// E10Balance verifies Lemmas 12 and 14: in every iteration of
// Algorithm 1, no machine sends or receives more than Õ(n/k) words, and
// deliveries complete in Õ(n/k²) rounds per iteration.
func E10Balance(cfg Config) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Algorithm 1 per-iteration communication balance",
		Claim:  "Lemma 12: Õ(n/k) messages sent per machine per iteration; Lemma 14: Õ(n/k²) delivery rounds",
		Header: []string{"graph", "n", "k", "max sent/superstep", "max recv/superstep", "bound n·log n/k", "max rounds/superstep"},
	}
	n := 3000
	if cfg.Quick {
		n = 1200
	}
	k := 32
	logn := math.Log2(float64(n))
	for _, g := range []*graph.Graph{gen.Star(n), gen.Gnp(n, 12/float64(n), cfg.Seed+3)} {
		name := "gnp"
		if g.Degree(0) == n-1 {
			name = "star"
		}
		p := partition.NewRVP(g, k, cfg.Seed+17)
		opts := pagerank.AlgorithmOne(0.15)
		opts.Tokens, opts.Iterations = 8, 30
		res, err := pagerank.Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 19}, opts)
		if err != nil {
			return t, fmt.Errorf("E10 balance on %s: %w", name, err)
		}
		var maxSent, maxRecv, maxRounds int64
		for _, ss := range res.Stats.PerSuperstep {
			if ss.MaxSentWords > maxSent {
				maxSent = ss.MaxSentWords
			}
			if ss.MaxRecvWords > maxRecv {
				maxRecv = ss.MaxRecvWords
			}
			if ss.Rounds > maxRounds {
				maxRounds = ss.Rounds
			}
		}
		t.Rows = append(t.Rows, []string{
			name, itoa(n), itoa(k), i64(maxSent), i64(maxRecv),
			f64(float64(n) * logn / float64(k)), i64(maxRounds),
		})
	}
	t.Notes = append(t.Notes, "both columns stay below the n·log n/k bound on the skewed star as well — the aggregation + heavy-vertex machinery at work")
	return t, nil
}

// E14Ablations quantifies the paper's three §3.1/§3.2 mechanisms by
// disabling them one at a time.
func E14Ablations(cfg Config) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "ablations: aggregation, heavy-vertex path, two-hop routing, proxies",
		Claim:  "each §3 mechanism is load-bearing on skewed inputs",
		Header: []string{"workload", "variant", "rounds", "vs full"},
	}
	n := 2000
	if cfg.Quick {
		n = 1000
	}
	const k = 32
	g := gen.Star(n)
	p := partition.NewRVP(g, k, cfg.Seed+23)
	ccfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 29}

	runPR := func(mod func(*pagerank.Options)) (int64, error) {
		opts := pagerank.AlgorithmOne(0.2)
		opts.Tokens, opts.Iterations = 16, 30
		mod(&opts)
		res, err := pagerank.Run(p, ccfg, opts)
		if err != nil {
			return 0, err
		}
		return res.Stats.Rounds, nil
	}
	full, err := runPR(func(*pagerank.Options) {})
	if err != nil {
		return t, fmt.Errorf("E14 pagerank full variant: %w", err)
	}
	variants := []struct {
		name string
		mod  func(*pagerank.Options)
	}{
		{"full (Algorithm 1)", func(*pagerank.Options) {}},
		{"no aggregation", func(o *pagerank.Options) { o.Aggregate = false }},
		{"no heavy path", func(o *pagerank.Options) { o.HeavyPath = false }},
		{"no two-hop routing", func(o *pagerank.Options) { o.TwoHop = false }},
		{"none (baseline [33])", func(o *pagerank.Options) {
			o.Aggregate, o.HeavyPath, o.TwoHop = false, false, false
		}},
	}
	for _, v := range variants {
		r, err := runPR(v.mod)
		if err != nil {
			return t, fmt.Errorf("E14 pagerank variant %q: %w", v.name, err)
		}
		t.Rows = append(t.Rows, []string{"pagerank/star", v.name, i64(r), ratio(r, full)})
	}

	triRows, err := trianglesAblation(cfg)
	if err != nil {
		return t, fmt.Errorf("E14 triangle ablation: %w", err)
	}
	t.Rows = append(t.Rows, triRows...)
	t.Notes = append(t.Notes,
		"vs-full > 1x marks the mechanism as load-bearing for that workload",
		"two-hop routing is neutral on the star (token destinations hash uniformly); its Θ(k) effect on concentrated flows is isolated in E7's direct-vs-two-hop rows")
	return t, nil
}
