package experiments

import (
	"fmt"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

// E21PhaseTimings decomposes wall-clock time into the three phases of
// the superstep protocol — local compute, barrier wait, and message
// exchange — using the obs trace recorder, for the two algorithms the
// paper analyses in depth (PageRank, Thm 2; triangle enumeration,
// Thm 3) on both the in-process loopback substrate and real TCP
// sockets.
//
// The point is to make the model's abstraction cost visible: §1.1
// counts ROUNDS, i.e. bandwidth-limited communication, and treats
// local computation as free. The phase breakdown shows where a real
// deployment's time actually goes — on loopback the exchange phase is
// memcpy-cheap and compute dominates; over sockets the exchange share
// grows toward the regime the model prices. The coverage column is the
// instrumentation's own audit: the share of the run's wall-clock
// explained by recorded spans (the acceptance bar is >= 0.95 on a
// socket run).
//
// When cfg.TracePath is set, the TCP PageRank run's full span timeline
// is written there as Chrome trace-event JSON.
func E21PhaseTimings(cfg Config) (Table, error) {
	t := Table{
		ID:     "E21",
		Title:  "phase timings: compute / barrier / exchange share of wall-clock, loopback vs TCP",
		Claim:  "§1.1 cost model: rounds price communication only — the exchange phase is where the substrate's cost lives",
		Header: []string{"algo", "substrate", "supersteps", "setup", "wall", "compute", "barrier", "exchange", "exch share", "exch p50/max", "coverage"},
	}
	type job struct {
		name string
		n    int
	}
	nPage, nTri := 1200, 400
	if cfg.Quick {
		nPage, nTri = 300, 150
	}
	jobs := []job{{"pagerank", nPage}, {"triangle", nTri}}
	substrates := []struct {
		label string
		kind  transport.Kind
	}{
		{"inmem", transport.InMem},
		{"tcp", transport.TCP},
	}
	const k = 8
	for _, j := range jobs {
		entry, ok := algo.Lookup(j.name)
		if !ok {
			return t, fmt.Errorf("algorithm %q not registered", j.name)
		}
		for _, sub := range substrates {
			tr := obs.NewTrace(0, k)
			prob := algo.Problem{N: j.n, K: k, Seed: cfg.Seed + 433, Recorder: tr, Streaming: cfg.Streaming}
			out, err := entry.Run(prob, sub.kind)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", j.name, sub.label, err)
			}
			spans := tr.Spans()
			sum := obs.Summarize(spans)
			exchShare := 0.0
			if sum.CoveredNs > 0 {
				// Share of the covered (phase-attributed) time, so the
				// three share columns are comparable across substrates
				// even when coverage differs slightly.
				exchShare = float64(sum.Exchange.TotalNs) / float64(sum.Compute.TotalNs+sum.Barrier.TotalNs+sum.Exchange.TotalNs)
			}
			t.Rows = append(t.Rows, []string{
				j.name, sub.label, itoa(sum.Supersteps), ms(int64(out.SetupTime)),
				ms(sum.WallNs), ms(sum.Compute.TotalNs), ms(sum.Barrier.TotalNs), ms(sum.Exchange.TotalNs),
				fmt.Sprintf("%.1f%%", 100*exchShare),
				ms(sum.Exchange.P50Ns) + "/" + ms(sum.Exchange.MaxNs),
				fmt.Sprintf("%.1f%%", 100*sum.Coverage),
			})
			if sub.kind == transport.TCP {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"%s/tcp: exchange takes %.1f%% of phase time (%s of %s wall), spans cover %.1f%% of wall",
					j.name, 100*exchShare, ms(sum.Exchange.TotalNs), ms(sum.WallNs), 100*sum.Coverage))
			}
			if cfg.TracePath != "" && j.name == "pagerank" && sub.kind == transport.TCP {
				if err := obs.WriteChromeTraceFile(cfg.TracePath, spans); err != nil {
					return t, fmt.Errorf("write trace %s: %w", cfg.TracePath, err)
				}
				t.Notes = append(t.Notes, fmt.Sprintf(
					"Chrome trace of pagerank/tcp written to %s (%d spans)", cfg.TracePath, len(spans)))
			}
		}
	}
	t.Notes = append(t.Notes,
		"setup is the input build (generation + view construction), reported by the registry's SetupTime/ExecTime split — the O(n+m) build cost never enters the phase columns",
		"compute/barrier/exchange are per-phase totals across all machines and supersteps; wall is the trace's extent",
		"on loopback the exchange is a pointer swap and compute dominates; over TCP the exchange share grows toward the communication-bound regime the round model prices")
	return t, nil
}

// ms renders a nanosecond count as milliseconds with enough precision
// for sub-millisecond phases.
func ms(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
}
