package experiments

import (
	"fmt"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/transport"
)

// E20WireBytes compares the paper's cost model against the physical
// layer: every registered algorithm runs twice on the loopback-TCP
// substrate — once with the compact v2 batch format, once with the
// legacy v1 — and the table reports the model words (identical in both
// runs, and identical to the loopback transport's, by the accounting
// split) next to the actual bytes each wire format shipped. Two ratios
// fall out:
//
//   - bytes/word — the physical cost of one model word, i.e. the
//     encoding efficiency plus the protocol overhead (barrier and
//     report/verdict frames) the model abstracts away;
//   - v2 saving — the fraction of v1's bytes the v2 format eliminates
//     by eliding per-envelope To/From headers (doc in transport/wire).
//
// The run pairs double as an end-to-end cross-version check: Stats must
// be bit-identical between wire formats, which the table verifies.
func E20WireBytes(cfg Config) (Table, error) {
	t := Table{
		ID:     "E20",
		Title:  "bytes-on-wire: model words vs physical bytes, v1 vs v2 batch format",
		Claim:  "§1.1 cost model: rounds/words are substrate-independent; the wire format only changes physical bytes",
		Header: []string{"algo", "k", "n", "words", "v2 bytes", "v1 bytes", "v2 saving", "bytes/word", "stats equal"},
	}
	n := 400
	if cfg.Quick {
		n = 150
	}
	allEqual := true
	var totV1, totV2 int64
	for _, entry := range algo.Entries() {
		prob := algo.Problem{N: n, K: 8, Seed: cfg.Seed + 271}
		switch entry.Name {
		case "pagerank":
			prob.N = n / 2
		case "conncomp":
			prob.EdgeP = 2 / float64(n)
		}
		v2, err := entry.Run(prob, transport.TCP)
		if err != nil {
			return t, fmt.Errorf("%s: tcp/v2 run: %w", entry.Name, err)
		}
		v1, err := entry.Run(prob, transport.TCPWireV1)
		if err != nil {
			return t, fmt.Errorf("%s: tcp/v1 run: %w", entry.Name, err)
		}
		equal := v2.Stats.Rounds == v1.Stats.Rounds &&
			v2.Stats.Words == v1.Stats.Words &&
			v2.Stats.Messages == v1.Stats.Messages &&
			v2.Hash == v1.Hash
		allEqual = allEqual && equal
		saving := 0.0
		if v1.Wire.BytesSent > 0 {
			saving = 1 - float64(v2.Wire.BytesSent)/float64(v1.Wire.BytesSent)
		}
		bytesPerWord := 0.0
		if v2.Stats.Words > 0 {
			bytesPerWord = float64(v2.Wire.BytesSent) / float64(v2.Stats.Words)
		}
		totV1 += v1.Wire.BytesSent
		totV2 += v2.Wire.BytesSent
		t.Rows = append(t.Rows, []string{
			entry.Name, itoa(prob.K), itoa(prob.N),
			i64(v2.Stats.Words), i64(v2.Wire.BytesSent), i64(v1.Wire.BytesSent),
			fmt.Sprintf("%.1f%%", 100*saving), f64(bytesPerWord),
			fmt.Sprintf("%v", equal),
		})
	}
	if totV1 > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"v2 ships %.1f%% fewer bytes than v1 across the registry (%d vs %d)",
			100*(1-float64(totV2)/float64(totV1)), totV2, totV1))
	}
	t.Notes = append(t.Notes,
		"bytes/word > 1 is the physical reality the model abstracts: varint headers, empty-batch frames, barrier and report/verdict traffic",
		fmt.Sprintf("Stats bit-identical across wire formats: %v", allEqual))
	return t, nil
}
