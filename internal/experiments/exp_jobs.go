package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/jobs"
	"kmachine/internal/transport"
)

// E24JobService measures what the resident mesh daemon amortises: the
// per-job cost of building the k-machine socket fabric. The same short
// job streams run through the jobs.Scheduler twice — once on the
// standing mesh (build once, attach per job), once on the build-per-job
// backend (fresh socket mesh per job, the run-once lifecycle of the
// earlier CLIs) — under a concurrent submitter keeping a fixed window
// of jobs in flight, reporting sustained jobs/sec and the p50/p99
// submit-to-result latency of each stream.
//
// The model prices computations in rounds and treats cluster setup as
// free; a real deployment pays O(k^2) dials and handshakes per mesh.
// Standing-mesh speedup therefore depends on how a job's execution
// time compares to mesh construction: jobs shorter than the mesh build
// (routing's single superstep, triangle's three) clear 3x, while
// superstep-heavy jobs amortise the build over so much execution that
// the gap narrows — even the shortest PageRank walks (eps=0.95 keeps
// them near the ~40-superstep floor) sit at the crossover. The mix row
// is the headline; the solo rows locate the crossover.
func E24JobService(cfg Config) (Table, error) {
	t := Table{
		ID:     "E24",
		Title:  "job service: standing k=8 mesh vs build-per-job, sustained jobs/sec and submit-to-result latency",
		Claim:  "§1.1 prices rounds, not cluster construction — a resident mesh amortises the O(k^2) per-job fabric build the run-once lifecycle pays",
		Header: []string{"workload", "jobs", "standing jobs/s", "build jobs/s", "speedup", "standing p50/p99", "build p50/p99"},
	}
	const k = 8
	mix := []jobs.Request{
		{Algo: "pagerank", Prob: algo.Problem{N: 16, Eps: 0.95, Seed: cfg.Seed + 97}},
		{Algo: "conncomp", Prob: algo.Problem{N: 64, Seed: cfg.Seed + 97}},
		{Algo: "triangle", Prob: algo.Problem{N: 64, Seed: cfg.Seed + 97}},
		{Algo: "dsort", Prob: algo.Problem{N: 64, Seed: cfg.Seed + 97}},
		{Algo: "routing", Prob: algo.Problem{N: 64, Seed: cfg.Seed + 97}},
	}
	type workload struct {
		name string
		reqs []jobs.Request
	}
	reps := 2
	if cfg.Quick {
		reps = 1
	}
	var stream []jobs.Request
	for r := 0; r < reps; r++ {
		stream = append(stream, mix...)
	}
	workloads := []workload{{"mix", stream}}
	solos := mix
	if cfg.Quick {
		solos = mix[:1] // pagerank only; the full bench locates the crossover
	}
	perSolo := 6
	if cfg.Quick {
		perSolo = 3
	}
	for _, req := range solos {
		reqs := make([]jobs.Request, perSolo)
		for i := range reqs {
			reqs[i] = req
		}
		workloads = append(workloads, workload{req.Algo, reqs})
	}

	// Single-core scheduling noise makes any one stream's wall clock
	// swing; like min-time benchmarking, the best of R repetitions per
	// (workload, backend) estimates the undisturbed stream. Applied
	// symmetrically to both backends.
	bestOf := 5
	if cfg.Quick {
		bestOf = 1
	}
	var fastest []string
	for _, wl := range workloads {
		standing, err := bestJobStream(k, true, wl.reqs, bestOf)
		if err != nil {
			return t, fmt.Errorf("%s/standing: %w", wl.name, err)
		}
		build, err := bestJobStream(k, false, wl.reqs, bestOf)
		if err != nil {
			return t, fmt.Errorf("%s/build: %w", wl.name, err)
		}
		speedup := standing.jobsPerSec / build.jobsPerSec
		t.Rows = append(t.Rows, []string{
			wl.name, itoa(len(wl.reqs)),
			fmt.Sprintf("%.1f", standing.jobsPerSec), fmt.Sprintf("%.1f", build.jobsPerSec),
			fmt.Sprintf("%.2fx", speedup),
			ms(int64(standing.p50)) + "/" + ms(int64(standing.p99)),
			ms(int64(build.p50)) + "/" + ms(int64(build.p99)),
		})
		if speedup >= 3 {
			fastest = append(fastest, wl.name)
		}
	}
	if len(fastest) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			">=3x standing-mesh speedup holds for %v — jobs whose execution is shorter than one mesh construction", fastest))
	}
	t.Notes = append(t.Notes,
		"submitter keeps a window of 4 jobs in flight (concurrent submit-while-running); latency is submit-to-result including queue wait",
		"speedup scales with (mesh build)/(job exec): single-superstep jobs see the full fabric amortisation, superstep-heavy jobs bury it in execution",
		fmt.Sprintf("GOMAXPROCS=%d — on a single-core host the parallel mesh dials and the supersteps serialize alike, which narrows the standing-mesh advantage", runtime.GOMAXPROCS(0)),
		"output hashes and Stats of every scheduled job are bit-identical to fresh single-run references (the jobs package determinism suite asserts this)")
	return t, nil
}

// streamResult summarises one job stream's timing.
type streamResult struct {
	jobsPerSec float64
	p50, p99   time.Duration
}

// bestJobStream repeats the stream and keeps the fastest repetition.
func bestJobStream(k int, standing bool, reqs []jobs.Request, times int) (streamResult, error) {
	var best streamResult
	for i := 0; i < times; i++ {
		r, err := runJobStream(k, standing, reqs)
		if err != nil {
			return streamResult{}, err
		}
		if r.jobsPerSec > best.jobsPerSec {
			best = r
		}
	}
	return best, nil
}

// runJobStream pushes reqs through a fresh scheduler on the chosen
// backend with a window-4 concurrent submitter and waits for the last
// result.
func runJobStream(k int, standing bool, reqs []jobs.Request) (streamResult, error) {
	// Earlier experiments in a full-suite run leave a large live heap;
	// collect it up front so GC pacing inside the timed stream reflects
	// the job service, not the predecessor (what testing.B does between
	// benchmarks).
	runtime.GC()
	var backend jobs.Backend
	var err error
	if standing {
		backend, err = jobs.NewMeshBackend(k)
	} else {
		backend, err = jobs.NewBuildBackend(k, transport.TCP)
	}
	if err != nil {
		return streamResult{}, err
	}
	s := jobs.New(backend, jobs.Options{})
	defer s.Close()

	const window = 4
	outstanding := map[uint64]bool{}
	var lats []time.Duration
	submitted := 0
	start := time.Now()
	for submitted < len(reqs) || len(outstanding) > 0 {
		for submitted < len(reqs) && len(outstanding) < window {
			id, err := s.Submit(reqs[submitted])
			if err != nil {
				return streamResult{}, err
			}
			outstanding[id] = true
			submitted++
		}
		time.Sleep(500 * time.Microsecond)
		for id := range outstanding {
			j, ok := s.Get(id)
			if !ok {
				return streamResult{}, fmt.Errorf("job %d vanished", id)
			}
			switch j.State {
			case jobs.StateDone:
				lats = append(lats, j.Latency(time.Now()))
				delete(outstanding, id)
			case jobs.StateFailed:
				return streamResult{}, fmt.Errorf("job %d (%s) failed: %s", id, j.Algo, j.Err)
			}
		}
	}
	wall := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return streamResult{
		jobsPerSec: float64(len(reqs)) / wall.Seconds(),
		p50:        lats[len(lats)/2],
		p99:        lats[(len(lats)*99+99)/100-1],
	}, nil
}
