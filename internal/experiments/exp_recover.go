package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/core"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/transport/chaos"
)

// E25Recovery prices the fault-tolerance subsystem (ROADMAP item 5):
// what does per-superstep checkpointing cost while nothing fails, and
// what does it buy when something does? Four arms of the same PageRank
// run at each n:
//
//	base      no checkpointing — the run every golden hash describes
//	ckpt      checkpointing every e supersteps into a memory sink;
//	          the wall-clock delta over base is the overhead %, the
//	          sink's Put counters give bytes per checkpoint
//	recover   chaos kills machine 3 mid-run; the cluster restores the
//	          latest checkpoint onto a replacement transport and
//	          replays at most e-1 supersteps
//	restart   the same kill with the first periodic checkpoint still
//	          ahead of it, so recovery falls back to the arm-time
//	          superstep -1 image — an exact restart-from-zero, the
//	          only option a checkpoint-less scheduler has
//
// The recover/restart gap is the headline: resume pays for the replay
// distance (kill superstep minus last checkpoint), restart pays for the
// whole prefix, so the saving grows with where in the run the failure
// lands. All four arms must land on one output hash — the acceptance
// bar of the recovery design is bit-identical output, not merely a
// completed run — and the table's "hash ok" note records that check.
func E25Recovery(cfg Config) (Table, error) {
	t := Table{
		ID:     "E25",
		Title:  "checkpointing: overhead while healthy, recovery latency vs restart-from-zero when a machine dies",
		Claim:  "determinism makes machine state a pure function of (seed, inbox history) — a consistent cut per e supersteps buys replay-bounded recovery with bit-identical output",
		Header: []string{"n", "supersteps", "every", "base", "ckpt", "overhead", "B/ckpt", "recover", "restart-0", "saved"},
	}
	sizes := []int{400, 800, 1600}
	bestOf := 3
	if cfg.Quick {
		sizes = []int{200}
		bestOf = 1
	}
	const k, eps = 8, 0.5
	hashOK := true
	var recoveries int
	for _, n := range sizes {
		prob := algo.Problem{N: n, K: k, EdgeP: 10 / float64(n), Seed: cfg.Seed + 251, Eps: eps}
		in, err := algo.GnpInput(prob)
		if err != nil {
			return t, fmt.Errorf("n=%d input: %w", n, err)
		}
		// Scout pass: learn the run's superstep count and golden hash,
		// then place the checkpoint cadence and the kill from them.
		scout, err := runPagerankArm(prob, in, 0, -1, nil)
		if err != nil {
			return t, fmt.Errorf("n=%d scout: %w", n, err)
		}
		ss := scout.stats.Supersteps
		every := ss / 4
		if every < 1 {
			every = 1
		}
		kill := ss / 2
		if kill < every {
			kill = every // at least one periodic checkpoint precedes the kill
		}
		if kill >= ss {
			kill = ss - 1
		}

		base, err := bestPagerankArm(prob, in, 0, -1, bestOf, nil)
		if err != nil {
			return t, fmt.Errorf("n=%d base: %w", n, err)
		}
		sink := core.NewMemorySink(2)
		ckpt, err := bestPagerankArm(prob, in, every, -1, bestOf, sink)
		if err != nil {
			return t, fmt.Errorf("n=%d ckpt: %w", n, err)
		}
		resumed, err := bestPagerankArm(prob, in, every, kill, bestOf, nil)
		if err != nil {
			return t, fmt.Errorf("n=%d recover: %w", n, err)
		}
		// A cadence beyond the kill superstep means no periodic capture
		// has happened when the machine dies: recovery restores the
		// arm-time image and replays the entire prefix.
		restart, err := bestPagerankArm(prob, in, kill+ss, kill, bestOf, nil)
		if err != nil {
			return t, fmt.Errorf("n=%d restart: %w", n, err)
		}
		hashOK = hashOK && base.hash == scout.hash && ckpt.hash == scout.hash &&
			resumed.hash == scout.hash && restart.hash == scout.hash
		// The acceptance bar is hard: a killed arm that completes with a
		// different output is a recovery bug, not a data point — fail
		// the experiment (and CI's exit-0 assertion) rather than record it.
		if !hashOK {
			return t, fmt.Errorf("n=%d: recovered output hash diverged from the unkilled golden (base=%016x ckpt=%016x recover=%016x restart=%016x golden=%016x)",
				n, base.hash, ckpt.hash, resumed.hash, restart.hash, scout.hash)
		}
		if resumed.stats.Recoveries != 1 || restart.stats.Recoveries != 1 {
			return t, fmt.Errorf("n=%d: killed arms performed %d/%d machine replacements, want exactly 1 each",
				n, resumed.stats.Recoveries, restart.stats.Recoveries)
		}
		recoveries += resumed.stats.Recoveries + restart.stats.Recoveries
		overhead := 100 * (float64(ckpt.wall)/float64(base.wall) - 1)
		bytesPer := int64(0)
		if sink.Puts() > 0 {
			bytesPer = sink.Bytes() / int64(sink.Puts())
		}
		saved := 100 * (1 - float64(resumed.wall)/float64(restart.wall))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(ss), itoa(every),
			ms(int64(base.wall)), ms(int64(ckpt.wall)), fmt.Sprintf("%.1f%%", overhead),
			i64(bytesPer),
			ms(int64(resumed.wall)), ms(int64(restart.wall)), fmt.Sprintf("%.0f%%", saved),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("all arms produced the base run's output hash (bit-identical recovery): %v", hashOK),
		fmt.Sprintf("every killed arm performed exactly one machine replacement: %v", recoveries == 2*len(sizes)),
		"recover replays at most every-1 supersteps past the restored cut; restart-0 replays the whole prefix — the saving is the replay-distance gap",
		"overhead is the healthy-run price of snapshotting all k machines each cadence (state codec + envelope re-encode at the observation barrier)",
		"B/ckpt is the full consistent cut: per-machine state blobs, RNG words, pending envelopes, and the Stats prefix (core.MemorySink counters)")
	return t, nil
}

// armResult is one timed run of the pagerank recovery workload.
type armResult struct {
	hash  uint64
	stats *core.Stats
	wall  time.Duration
}

// bestPagerankArm repeats the arm and keeps the fastest wall-clock (the
// min-time estimate every timing experiment here uses). Hashes and
// Stats are identical across repetitions by determinism, so the first
// repetition's non-timing fields stand for all; only that first run
// feeds the caller's sink, whose Puts/Bytes must describe one run, not
// the sum of the repetitions.
func bestPagerankArm(prob algo.Problem, in partition.Input, every, killStep, times int, sink *core.MemorySink) (armResult, error) {
	var best armResult
	for i := 0; i < times; i++ {
		var s *core.MemorySink
		if i == 0 {
			s = sink
		}
		r, err := runPagerankArm(prob, in, every, killStep, s)
		if err != nil {
			return armResult{}, err
		}
		if i == 0 {
			best = r
		} else if r.wall < best.wall {
			best.wall = r.wall
		}
	}
	return best, nil
}

// runPagerankArm executes one PageRank run at the core layer with the
// checkpoint policy armed at cadence every (0 = off) and, when killStep
// >= 0, a chaos KillAt fault taking machine `victim` down at that
// superstep's exchange. Recovery reopens a fresh, fault-free loopback
// transport — the "replacement machine joins the mesh" of a real
// deployment. Machines are rebuilt from the shared input every call:
// each arm must start from pristine state.
func runPagerankArm(prob algo.Problem, in partition.Input, every, killStep int, sink *core.MemorySink) (armResult, error) {
	runtime.GC()
	a := pagerank.Descriptor(prob.N, pagerank.AlgorithmOne(prob.Eps))
	machines := make([]algo.Machine[pagerank.Wire, pagerank.Local], prob.K)
	for i := range machines {
		v, err := in.MachineView(core.MachineID(i))
		if err != nil {
			return armResult{}, err
		}
		if machines[i], err = a.NewMachine(v); err != nil {
			return armResult{}, err
		}
	}
	ccfg := core.Config{K: prob.K, Bandwidth: core.DefaultBandwidth(prob.N), Seed: prob.Seed + 2}
	if every > 0 {
		var s core.CheckpointSink
		if sink != nil {
			s = sink
		}
		ccfg.Checkpoint = core.CheckpointPolicy{Every: every, Sink: s}
	}
	cluster := core.NewCluster(ccfg, func(id core.MachineID) core.Machine[pagerank.Wire] {
		return machines[id]
	})
	inner, err := core.OpenTransport[pagerank.Wire](transport.InMem, prob.K, a.Codec)
	if err != nil {
		return armResult{}, err
	}
	var tr core.Transport[pagerank.Wire] = inner
	if killStep >= 0 {
		tr = chaos.Wrap(inner, chaos.KillAt(victim, killStep))
	}
	defer tr.Close()
	reopen := func() (core.Transport[pagerank.Wire], error) {
		return core.OpenTransport[pagerank.Wire](transport.InMem, prob.K, a.Codec)
	}
	start := time.Now()
	stats, err := cluster.RunCheckpointed(tr, a.Codec, reopen)
	wall := time.Since(start)
	if err != nil {
		return armResult{}, err
	}
	locals := make([]pagerank.Local, len(machines))
	for i, m := range machines {
		locals[i] = m.Output()
	}
	return armResult{hash: pagerankHash(a.Merge(locals)), stats: stats, wall: wall}, nil
}

const victim = 3

// pagerankHash mirrors the registry's canonical pagerank output hash
// (estimates then visit counts through algo.Hash64), so the arms'
// agreement here is the same equality the cross-substrate suites check.
func pagerankHash(r *pagerank.Result) uint64 {
	h := algo.NewHash64()
	for _, x := range r.Estimate {
		h.Add(math.Float64bits(x))
	}
	for _, c := range r.Psi {
		h.Add(uint64(c))
	}
	return h.Sum()
}
