package experiments

import (
	"fmt"
	"math"

	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/gen"
	"kmachine/internal/infotheory"
	"kmachine/internal/lowerbound"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/routing"
	"kmachine/internal/triangle"
)

// E4RevealedPaths runs the Lemma 5 experiment: under the RVP, the
// maximum number of weakly connected paths of H revealed to any machine
// scales like q/k².
func E4RevealedPaths(cfg Config) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "weakly connected paths revealed by the random vertex partition",
		Claim:  "Lemma 5: at most O(n·log n/k²) paths revealed to any machine whp",
		Header: []string{"q", "k", "max revealed (avg)", "2q/k²", "q·log n/k²"},
	}
	q := 20000
	seeds := 8
	if cfg.Quick {
		q, seeds = 5000, 4
	}
	lb := gen.LowerBoundGraph(q, cfg.Seed+131)
	n := lb.G.N()
	logn := math.Log2(float64(n))
	var xs, ys []float64
	for _, k := range []int{4, 8, 16, 32} {
		var total int
		for s := 0; s < seeds; s++ {
			p := partition.NewRVP(lb.G, k, cfg.Seed+uint64(137+s))
			total += lowerbound.MaxRevealedPaths(lb, p)
		}
		avg := float64(total) / float64(seeds)
		t.Rows = append(t.Rows, []string{
			itoa(q), itoa(k), f64(avg),
			f64(2 * float64(q) / float64(k*k)),
			f64(float64(q) * logn / float64(k*k)),
		})
		xs = append(xs, float64(k))
		ys = append(ys, math.Max(avg, 0.5))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"max revealed ~ k^%.2f (Lemma 5 predicts -2); always below the q·log n/k² bound",
		fitExponent(xs, ys)))
	return t, nil
}

// E7RandomRouting measures Lemma 13 and the Valiant two-hop contrast.
func E7RandomRouting(cfg Config) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "random routing",
		Claim:  "Lemma 13: x messages with random destinations per machine route in O((x log x)/k) rounds",
		Header: []string{"setting", "k", "x", "rounds", "(x/k)/B"},
	}
	x := 4096
	if cfg.Quick {
		x = 1024
	}
	const b = 4
	var xs, ys []float64
	for _, k := range []int{4, 8, 16, 32} {
		res, err := routing.RandomRouteExperiment(k, x, b, cfg.Seed+139)
		if err != nil {
			return t, fmt.Errorf("E7 random routing at k=%d: %w", k, err)
		}
		t.Rows = append(t.Rows, []string{
			"random dests", itoa(k), itoa(x), i64(res.Stats.Rounds),
			f64(float64(x) / float64(k) / b),
		})
		xs = append(xs, float64(k))
		ys = append(ys, float64(res.Stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("rounds ~ k^%.2f (Lemma 13 predicts -1)", fitExponent(xs, ys)))

	const k = 16
	direct, err := routing.FixedDestinationExperiment(k, x, b, false, cfg.Seed+149)
	if err != nil {
		return t, fmt.Errorf("E7 direct routing: %w", err)
	}
	twohop, err := routing.FixedDestinationExperiment(k, x, b, true, cfg.Seed+149)
	if err != nil {
		return t, fmt.Errorf("E7 two-hop routing: %w", err)
	}
	t.Rows = append(t.Rows, []string{"1 src -> 1 dst, direct", itoa(k), itoa(x), i64(direct.Stats.Rounds), f64(float64(x) / b)})
	t.Rows = append(t.Rows, []string{"1 src -> 1 dst, two-hop", itoa(k), itoa(x), i64(twohop.Stats.Rounds), f64(2 * float64(x) / float64(k) / b)})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"two-hop beats direct %.1fx on the concentrated flow — why Algorithm 1 routes its light tokens via random intermediates",
		float64(direct.Stats.Rounds)/float64(twohop.Stats.Rounds)))
	return t, nil
}

// E8Sorting measures the §1.3 sorting application of the GLBT.
func E8Sorting(cfg Config) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "distributed sorting",
		Claim:  "§1.3: Ω̃(n/k²) by the GLBT, matched by sample sort in Õ(n/k²)",
		Header: []string{"n", "k", "rounds", "rounds·k²/n", "GLBT LB", "rebalanced"},
	}
	n := 60000
	if cfg.Quick {
		n = 20000
	}
	var xs, ys []float64
	for _, k := range []int{8, 16, 32} {
		in := dsort.RandomInput(n, k, cfg.Seed+151, dsort.UniformKeys)
		const b = 8
		res, err := dsort.Run(in, core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + 157}, 128)
		if err != nil {
			return t, fmt.Errorf("E8 sorting at k=%d: %w", k, err)
		}
		lb := infotheory.SortingBound(n, k, b*core.DefaultBandwidth(n))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(k), i64(res.Stats.Rounds),
			f64(float64(res.Stats.Rounds) * float64(k*k) / float64(n)),
			f64(lb.Rounds), i64(res.RebalancedKeys),
		})
		xs = append(xs, float64(k))
		ys = append(ys, float64(res.Stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("rounds ~ k^%.2f (Õ(n/k²) predicts -2)", fitExponent(xs, ys)))
	return t, nil
}

// E9InducedEdges runs the Proposition 2 concentration check.
func E9InducedEdges(cfg Config) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "induced-subgraph edge concentration",
		Claim:  "Prop 2 (Rödl–Ruciński): e(G[R]) <= 3ηt² whp for random |R| = t",
		Header: []string{"n", "m", "t", "max e(G[R])", "bound 3ηt²", "violations/trials"},
	}
	n := 400
	trials := 200
	if cfg.Quick {
		n, trials = 240, 80
	}
	g := gen.Gnp(n, 0.5, cfg.Seed+163)
	for _, t0 := range []int{n / 12, n / 6, n / 3} {
		res := lowerbound.Proposition2Check(g, t0, trials, cfg.Seed+167)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(t0), itoa(res.MaxInduced), f64(res.Bound),
			fmt.Sprintf("%d/%d", res.Violations, res.Trials),
		})
	}
	t.Notes = append(t.Notes,
		"this concentration is what caps a triple machine's edge load at Õ(m/k^{2/3}) in Theorem 5's proof")
	return t, nil
}

// E11Conversion measures the footnote-3 REP -> RVP conversion.
func E11Conversion(cfg Config) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "random edge partition -> random vertex partition conversion",
		Claim:  "fn. 3: Õ(m/k² + n/k) rounds",
		Header: []string{"n", "m", "k", "rounds", "2·m·2/(k²·B)"},
	}
	n := 600
	if cfg.Quick {
		n = 300
	}
	g := gen.Gnp(n, 0.2, cfg.Seed+173)
	var xs, ys []float64
	for _, k := range []int{4, 8, 16} {
		rep := partition.NewREP(g, k, cfg.Seed+179)
		const b = 4
		res, err := partition.ConvertREPToRVP(rep, core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + 181}, cfg.Seed+191)
		if err != nil {
			return t, fmt.Errorf("E11 conversion at k=%d: %w", k, err)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(k), i64(res.Stats.Rounds),
			f64(4 * float64(g.M()) / float64(k*k) / b),
		})
		xs = append(xs, float64(k))
		ys = append(ys, float64(res.Stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("rounds ~ k^%.2f (Õ(m/k²) predicts -2)", fitExponent(xs, ys)))
	return t, nil
}

// E15Gap audits every upper bound against its GLBT lower bound: the
// quotient is the polylog factor the Õ/Ω̃ notation absorbs.
func E15Gap(cfg Config) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "measured upper bounds vs GLBT lower bounds",
		Claim:  "§1.2: the algorithms are optimal up to polylog(n) factors",
		Header: []string{"problem", "n", "k", "measured rounds", "GLBT LB", "gap", "polylog² n"},
	}
	n := 2000
	if cfg.Quick {
		n = 1000
	}
	const k = 16
	b := core.DefaultBandwidth(n)
	bBits := b * core.DefaultBandwidth(n)
	logn := math.Log2(float64(n))

	// PageRank on G(n, 12/n).
	g := gen.Gnp(n, 12/float64(n), cfg.Seed+193)
	p := partition.NewRVP(g, k, cfg.Seed+197)
	prOpts := pagerank.AlgorithmOne(0.15)
	prOpts.Tokens = 8
	pr, err := pagerank.Run(p, core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + 199}, prOpts)
	if err != nil {
		return t, fmt.Errorf("E15 pagerank: %w", err)
	}
	prLB := infotheory.PageRankBound(n, k, bBits)
	addRow := func(problem string, nn int, rounds int64, lb float64) {
		t.Rows = append(t.Rows, []string{
			problem, itoa(nn), itoa(k), i64(rounds), f64(lb),
			f64(float64(rounds) / math.Max(lb, 1e-9)), f64(logn * logn),
		})
	}
	addRow("pagerank", n, pr.Stats.Rounds, prLB.Rounds)

	// Triangles on dense G(n', 1/2), smaller n' to keep t manageable.
	nt := 240
	if cfg.Quick {
		nt = 140
	}
	gt := gen.Gnp(nt, 0.5, cfg.Seed+211)
	pt := partition.NewRVP(gt, 27, cfg.Seed+223)
	tr, err := triangle.Run(pt, core.Config{K: 27, Bandwidth: core.DefaultBandwidth(nt), Seed: cfg.Seed + 227}, triangle.AlgorithmOptions())
	if err != nil {
		return t, fmt.Errorf("E15 triangles: %w", err)
	}
	trLB := infotheory.TriangleBound(nt, 27, core.DefaultBandwidth(nt)*core.DefaultBandwidth(nt), float64(gt.CountTriangles()))
	t.Rows = append(t.Rows, []string{
		"triangles", itoa(nt), "27", i64(tr.Stats.Rounds), f64(trLB.Rounds),
		f64(float64(tr.Stats.Rounds) / math.Max(trLB.Rounds, 1e-9)), f64(logn * logn),
	})

	// Sorting.
	in := dsort.RandomInput(10*n, k, cfg.Seed+229, dsort.UniformKeys)
	srt, err := dsort.Run(in, core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + 233}, 128)
	if err != nil {
		return t, fmt.Errorf("E15 sorting: %w", err)
	}
	srtLB := infotheory.SortingBound(10*n, k, bBits)
	addRow("sorting", 10*n, srt.Stats.Rounds, srtLB.Rounds)

	t.Notes = append(t.Notes,
		"gap column is the hidden polylog: compare against polylog² n; large constant factors also live here",
		"pagerank's gap additionally contains the Θ(log n/eps) iteration floor (~2·iterations rounds) that the Õ's additive polylog term absorbs")
	return t, nil
}

// E16Connectivity measures the label-propagation connectivity substrate
// against the §1.3 MST/connectivity GLBT bound.
func E16Connectivity(cfg Config) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "connected components",
		Claim:  "§1.3: GLBT gives Ω̃(n/k²) for MST/connectivity (tight by [51])",
		Header: []string{"n", "m", "k", "rounds", "phases", "components", "GLBT LB"},
	}
	n := 3000
	if cfg.Quick {
		n = 1200
	}
	g := gen.Gnp(n, 12/float64(n), cfg.Seed+239)
	for _, k := range []int{4, 8, 16} {
		p := partition.NewRVP(g, k, cfg.Seed+241)
		b := core.DefaultBandwidth(n)
		res, err := conncomp.Run(p, core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + 251})
		if err != nil {
			return t, fmt.Errorf("E16 connectivity at k=%d: %w", k, err)
		}
		lb := infotheory.MSTBound(n, k, b*core.DefaultBandwidth(n))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(k), i64(res.Stats.Rounds),
			itoa(res.Phases), itoa(res.Components), f64(lb.Rounds),
		})
	}
	t.Notes = append(t.Notes,
		"substitution (DESIGN.md): [51]'s sketch-based Õ(n/k²) algorithm is replaced by label propagation with the same per-phase communication profile")
	return t, nil
}
