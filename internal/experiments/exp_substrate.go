package experiments

import (
	"fmt"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/transport"
)

// E19SubstrateMatrix enumerates the algorithm registry — not a
// hard-wired list — and runs every registered algorithm on all three
// substrates (in-process loopback, loopback TCP sockets, standalone
// node runtime), reporting measured rounds/words and whether Stats and
// output hashes agree bit-for-bit. It is the kmbench-visible form of
// the conversion results of Klauck et al. (arXiv:1311.6209): a
// k-machine computation's cost is substrate-independent, and the
// unified driver layer (internal/algo) makes that hold by construction.
func E19SubstrateMatrix(cfg Config) (Table, error) {
	t := Table{
		ID:     "E19",
		Title:  "substrate equivalence: every registered algorithm × {inmem, tcp, node}",
		Claim:  "k-machine computations are substrate-independent (Klauck et al. conversion, §1.1 model)",
		Header: []string{"algo", "k", "n", "rounds", "words", "tcp=inmem", "node=inmem"},
	}
	n := 400
	if cfg.Quick {
		n = 150
	}
	allAgree := true
	for _, entry := range algo.Entries() {
		prob := algo.Problem{N: n, K: 8, Seed: cfg.Seed + 191, Streaming: cfg.Streaming,
			Checkpoint: algo.CheckpointSpec{Every: cfg.CheckpointEvery, Dir: cfg.CheckpointDir}}
		switch entry.Name {
		case "pagerank":
			// The token walk is the longest workload; keep it modest.
			prob.N = n / 2
		case "conncomp":
			// Sparse, many components: keeps the label hash sensitive.
			prob.EdgeP = 2 / float64(n)
		}
		mem, err := entry.Run(prob, transport.InMem)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: inmem run failed: %v", entry.Name, err))
			allAgree = false
			continue
		}
		tcp, err := entry.Run(prob, transport.TCP)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: tcp run failed: %v", entry.Name, err))
			allAgree = false
			continue
		}
		node, err := entry.RunNodeLocal(prob)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: node run failed: %v", entry.Name, err))
			allAgree = false
			continue
		}
		tcpSame := sameOutcome(mem, tcp)
		nodeSame := sameOutcome(mem, node)
		allAgree = allAgree && tcpSame && nodeSame
		t.Rows = append(t.Rows, []string{
			entry.Name, itoa(prob.K), itoa(prob.N),
			i64(mem.Stats.Rounds), i64(mem.Stats.Words),
			fmt.Sprintf("%v", tcpSame), fmt.Sprintf("%v", nodeSame),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("bit-identical Stats and output hashes across all substrates: %v", allAgree))
	return t, nil
}

// sameOutcome reports whether two runs agree on the equivalence
// criteria: rounds, supersteps, messages, words, max received words,
// and the canonical output hash.
func sameOutcome(a, b *algo.Outcome) bool {
	return a.Stats.Rounds == b.Stats.Rounds &&
		a.Stats.Supersteps == b.Stats.Supersteps &&
		a.Stats.Messages == b.Stats.Messages &&
		a.Stats.Words == b.Stats.Words &&
		a.Stats.MaxRecvWords == b.Stats.MaxRecvWords &&
		a.Hash == b.Hash
}
