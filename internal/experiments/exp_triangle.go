package experiments

import (
	"fmt"
	"math"

	"kmachine/internal/core"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/infotheory"
	"kmachine/internal/lowerbound"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/triangle"
)

// E2Triangles reproduces the headline triangle claim: the §3.2 algorithm
// runs in Õ(m/k^{5/3} + n/k^{4/3}) rounds (Theorem 5) against the
// Ω̃(m/k^{5/3}) bound on G(n,1/2) (Theorem 3), improving the
// Õ(m·n^{1/3}/k²) baseline.
func E2Triangles(cfg Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "triangle enumeration round complexity vs k on G(n,1/2)",
		Claim:  "Thm 5: Õ(m/k^{5/3}) vs baseline Õ(m·n^{1/3}/k²); Thm 3: Ω̃(m/k^{5/3})",
		Header: []string{"n", "m", "k", "alg rounds", "baseline rounds", "speedup", "GLBT LB", "count ok"},
	}
	n := 384
	if cfg.Quick {
		n = 192
	}
	g := gen.Gnp(n, 0.5, cfg.Seed+31)
	truth := g.CountTriangles()
	var xs, ys []float64
	for _, k := range []int{8, 27, 64} {
		p := partition.NewRVP(g, k, cfg.Seed+uint64(k))
		b := core.DefaultBandwidth(n)
		ccfg := core.Config{K: k, Bandwidth: b, Seed: cfg.Seed + uint64(k) + 37}
		alg, err := triangle.Run(p, ccfg, triangle.AlgorithmOptions())
		if err != nil {
			return t, fmt.Errorf("E2 algorithm at k=%d: %w", k, err)
		}
		base, err := triangle.RunBaseline(p, ccfg, triangle.Options{})
		if err != nil {
			return t, fmt.Errorf("E2 baseline at k=%d: %w", k, err)
		}
		lb := infotheory.TriangleBound(n, k, b*core.DefaultBandwidth(n), float64(truth))
		ok := alg.Count == truth && base.Count == truth
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(k),
			i64(alg.Stats.Rounds), i64(base.Stats.Rounds),
			ratio(base.Stats.Rounds, alg.Stats.Rounds),
			f64(lb.Rounds), fmt.Sprintf("%v", ok),
		})
		xs = append(xs, float64(k))
		ys = append(ys, float64(alg.Stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"alg rounds ~ k^%.2f (Õ(m/k^{5/3}) predicts -5/3 ≈ -1.67; baseline Õ(m·n^{1/3}/k²) predicts -2 from a higher intercept)",
		fitExponent(xs, ys)))
	t.Notes = append(t.Notes, fmt.Sprintf("ground truth t = %d triangles; every run verified by count+checksum", truth))
	return t, nil
}

// E5CongestedClique reproduces Corollary 1's tightness: with k = n
// machines and B = Θ(log n) bits the algorithm needs Θ̃(n^{1/3}) rounds.
func E5CongestedClique(cfg Config) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "triangle enumeration in the congested clique (k = n)",
		Claim:  "Cor 1: Ω(n^{1/3}/B) rounds, tight up to log factors",
		Header: []string{"n", "m", "rounds", "rounds/n^{1/3}", "LB n^{1/3}/B", "count ok"},
	}
	ns := []int{64, 216, 512}
	if cfg.Quick {
		ns = []int{64, 125}
	}
	var xs, ys []float64
	for _, n := range ns {
		g := gen.Gnp(n, 0.5, cfg.Seed+uint64(n))
		p := partition.NewIdentity(g)
		res, err := triangle.Run(p, core.Config{K: n, Bandwidth: 1, Seed: cfg.Seed + 41}, triangle.AlgorithmOptions())
		if err != nil {
			return t, fmt.Errorf("E5 congested clique at n=%d: %w", n, err)
		}
		truth := g.CountTriangles()
		lb := infotheory.CongestedCliqueTriangleBound(n, core.DefaultBandwidth(n))
		cbrt := math.Cbrt(float64(n))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), i64(res.Stats.Rounds),
			f64(float64(res.Stats.Rounds) / cbrt), f64(lb.Rounds),
			fmt.Sprintf("%v", res.Count == truth),
		})
		xs = append(xs, float64(n))
		ys = append(ys, float64(res.Stats.Rounds))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"rounds ~ n^%.2f (Θ̃(n^{1/3}) predicts 0.33; the first super-constant congested-clique lower bound)",
		fitExponent(xs, ys)))
	return t, nil
}

// E6Messages reproduces Corollary 2: a round-optimal enumeration
// algorithm must exchange Ω̃(m·k^{1/3}) messages — strictly more than the
// O(m) of aggregate-at-one-machine strategies.
func E6Messages(cfg Config) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "message/round tradeoff (round-optimal vs centralize-at-one-machine)",
		Claim:  "Cor 2: Ω̃(m·k^{1/3}) messages for Õ(m/k^{5/3})-round algorithms; O(m)-message aggregation pays Θ̃(m/k) rounds",
		Header: []string{"strategy", "k", "messages", "rounds", "msgs/(m·k^{1/3})", "msgs/m"},
	}
	n := 320
	if cfg.Quick {
		n = 160
	}
	g := gen.Gnp(n, 0.5, cfg.Seed+43)
	m := float64(g.M())
	truth := g.CountTriangles()
	for _, k := range []int{8, 27, 64} {
		p := partition.NewRVP(g, k, cfg.Seed+uint64(k)+47)
		ccfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 53}
		res, err := triangle.Run(p, ccfg, triangle.AlgorithmOptions())
		if err != nil {
			return t, fmt.Errorf("E6 round-optimal at k=%d: %w", k, err)
		}
		pred := m * math.Cbrt(float64(k))
		t.Rows = append(t.Rows, []string{
			"round-optimal (§3.2)", itoa(k), i64(res.Stats.Messages), i64(res.Stats.Rounds),
			f64(float64(res.Stats.Messages) / pred),
			f64(float64(res.Stats.Messages) / m),
		})
		cen, err := triangle.RunCentralized(p, ccfg)
		if err != nil {
			return t, fmt.Errorf("E6 centralized at k=%d: %w", k, err)
		}
		if cen.Count != truth || res.Count != truth {
			return t, fmt.Errorf("E6 enumeration mismatch at k=%d: alg=%d centralized=%d truth=%d", k, res.Count, cen.Count, truth)
		}
		t.Rows = append(t.Rows, []string{
			"centralize (O(m) msgs)", itoa(k), i64(cen.Stats.Messages), i64(cen.Stats.Rounds),
			f64(float64(cen.Stats.Messages) / pred),
			f64(float64(cen.Stats.Messages) / m),
		})
	}
	t.Notes = append(t.Notes,
		"round-optimal rows: msgs/(m·k^{1/3}) stays Θ(1) across k — the algorithm sits on Corollary 2's tradeoff curve",
		"centralize rows: ~1 message per edge but Θ̃(m/k) rounds — exactly the strategy Corollary 2 rules out for round-optimal algorithms")
	return t, nil
}

// E12Triads runs the open-triad enumeration (§1.2) on a sparse random
// graph and a star.
func E12Triads(cfg Config) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "open-triad enumeration via the color-partition machinery",
		Claim:  "§1.2: the triangle bounds extend to open triads (friend-recommendation workload)",
		Header: []string{"graph", "n", "k", "triads", "expected", "rounds", "exact"},
	}
	n := 600
	if cfg.Quick {
		n = 300
	}
	const k = 27
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-sparse", gen.Gnp(n, 4/float64(n), cfg.Seed+59)},
		{"star", gen.Star(n / 4)},
	}
	for _, wl := range workloads {
		p := partition.NewRVP(wl.g, k, cfg.Seed+61)
		opts := triangle.AlgorithmOptions()
		opts.Triads = true
		res, err := triangle.Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(wl.g.N()), Seed: cfg.Seed + 67}, opts)
		if err != nil {
			return t, fmt.Errorf("E12 triads on %s: %w", wl.name, err)
		}
		want := wl.g.CountTriads()
		t.Rows = append(t.Rows, []string{
			wl.name, itoa(wl.g.N()), itoa(k), i64(res.Count), i64(want),
			i64(res.Stats.Rounds), fmt.Sprintf("%v", res.Count == want),
		})
	}
	return t, nil
}

// E13Crossover probes the two terms of Theorem 5's upper bound,
// Õ(m/k^{5/3} + n/k^{4/3}): sweeping density at fixed n and k shows
// where the edge-volume term overtakes the per-vertex term.
func E13Crossover(cfg Config) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "density sweep: the m/k^{5/3} vs n/k^{4/3} crossover",
		Claim:  "Thm 5: Õ(m/k^{5/3} + n/k^{4/3}); the m-term dominates once m/k^{5/3} > n/k^{4/3}, i.e. m > n·k^{1/3}",
		Header: []string{"n", "k", "p", "m", "rounds", "m-term", "n-term", "dominant"},
	}
	n := 1000
	if cfg.Quick {
		n = 600
	}
	const k = 27
	b := float64(core.DefaultBandwidth(n))
	for _, p := range []float64{0.002, 0.01, 0.05, 0.2} {
		g := gen.Gnp(n, p, cfg.Seed+71)
		vp := partition.NewRVP(g, k, cfg.Seed+73)
		res, err := triangle.Run(vp, core.Config{K: k, Bandwidth: int(b), Seed: cfg.Seed + 79}, triangle.AlgorithmOptions())
		if err != nil {
			return t, fmt.Errorf("E13 crossover at p=%g: %w", p, err)
		}
		mTerm := float64(g.M()) / math.Pow(float64(k), 5.0/3.0) / b
		nTerm := float64(n) / math.Pow(float64(k), 4.0/3.0) / b
		dom := "n/k^{4/3}"
		if mTerm > nTerm {
			dom = "m/k^{5/3}"
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(k), f64(p), itoa(g.M()),
			i64(res.Stats.Rounds), f64(mTerm), f64(nTerm), dom,
		})
	}
	t.Notes = append(t.Notes, "the crossover density is m ≈ n·k^{1/3} (avg degree ≈ 2k^{1/3})")
	return t, nil
}

// E18Cliques4 exercises the §1.2 generalization to larger subgraphs:
// 4-clique enumeration with c = ⌊k^{1/4}⌋ color classes and quadruple
// machines, volume Θ(m·√k) over k² links.
func E18Cliques4(cfg Config) (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "4-clique enumeration (generalized color partition)",
		Claim:  "§1.2: the triangle technique generalizes to other small subgraphs (cliques)",
		Header: []string{"n", "m", "k", "colors", "cliques", "rounds", "exact"},
	}
	n := 120
	if cfg.Quick {
		n = 70
	}
	g := gen.Gnp(n, 0.4, cfg.Seed+257)
	truth := g.CountCliques4()
	for _, k := range []int{16, 81} {
		p := partition.NewRVP(g, k, cfg.Seed+uint64(k)+263)
		res, err := triangle.RunCliques4(p,
			core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 269},
			triangle.AlgorithmOptions())
		if err != nil {
			return t, fmt.Errorf("E18 4-cliques at k=%d: %w", k, err)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(k), itoa(res.Colors),
			i64(res.Count), i64(res.Stats.Rounds),
			fmt.Sprintf("%v", res.Count == truth),
		})
	}
	t.Notes = append(t.Notes,
		"volume is Θ(m·k^{1/2}) (each edge reaches Θ(c²) quadruple machines), the K_s analogue of Theorem 5's Θ(m·k^{1/3})")
	return t, nil
}

// trianglesAblation contributes the proxy / heavy-designation rows of
// E14: on a star, the hub's home machine must ship half the edges when
// designation is off, and must fan out all k^{1/3}-fold copies itself
// when proxies are off.
func trianglesAblation(cfg Config) ([][]string, error) {
	n := 4000
	if cfg.Quick {
		n = 1500
	}
	const k = 27
	g := gen.Star(n)
	p := partition.NewRVP(g, k, cfg.Seed+113)
	ccfg := core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 127}
	run := func(proxies, heavy bool) (int64, error) {
		opts := triangle.AlgorithmOptions()
		opts.Proxies, opts.HeavyDesignation = proxies, heavy
		res, err := triangle.Run(p, ccfg, opts)
		if err != nil {
			return 0, err
		}
		if res.Count != 0 {
			return 0, fmt.Errorf("star graph produced %d triangles", res.Count)
		}
		return res.Stats.Rounds, nil
	}
	full, err := run(true, true)
	if err != nil {
		return nil, fmt.Errorf("full variant: %w", err)
	}
	rows := [][]string{
		{"triangles/star", "full (§3.2)", i64(full), "1.00x"},
	}
	for _, v := range []struct {
		name           string
		proxies, heavy bool
	}{
		{"no proxies", false, true},
		{"no heavy designation", true, false},
		{"neither", false, false},
	} {
		r, err := run(v.proxies, v.heavy)
		if err != nil {
			return nil, fmt.Errorf("variant %q: %w", v.name, err)
		}
		rows = append(rows, []string{"triangles/star", v.name, i64(r), ratio(r, full)})
	}
	return rows, nil
}

// E17InfoCost audits Theorem 1's premises on live runs: the machine
// holding the largest share of the output must have received at least
// the information cost IC that the lower bounds plug into the GLBT.
func E17InfoCost(cfg Config) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "information cost audit: received bits vs IC",
		Claim:  "Thm 1 premise (2): outputting the solution forces Ω(IC) bits into some machine",
		Header: []string{"problem", "n", "k", "max recv bits", "IC bits", "recv/IC"},
	}
	n := 240
	if cfg.Quick {
		n = 140
	}
	const k = 27
	g := gen.Gnp(n, 0.5, cfg.Seed+83)
	p := partition.NewRVP(g, k, cfg.Seed+89)
	res, err := triangle.Run(p, core.Config{K: k, Bandwidth: core.DefaultBandwidth(n), Seed: cfg.Seed + 97}, triangle.AlgorithmOptions())
	if err != nil {
		return t, fmt.Errorf("E17 triangles: %w", err)
	}
	truth := g.CountTriangles()
	icTri := math.Pow(float64(truth)/float64(k), 2.0/3.0)
	recvTri := lowerbound.MaxMachineKnowledge(res.Stats, n)
	t.Rows = append(t.Rows, []string{
		"triangles", itoa(n), itoa(k), i64(recvTri), f64(icTri),
		f64(float64(recvTri) / icTri),
	})

	lbg := gen.LowerBoundGraph(500, cfg.Seed+101)
	pp := partition.NewRVP(lbg.G, 8, cfg.Seed+103)
	prOpts := pagerank.AlgorithmOne(0.15)
	prOpts.Tokens = 64
	prRes, err := pagerank.Run(pp, core.Config{K: 8, Bandwidth: core.DefaultBandwidth(lbg.G.N()), Seed: cfg.Seed + 107}, prOpts)
	if err != nil {
		return t, fmt.Errorf("E17 pagerank: %w", err)
	}
	icPR := float64(lbg.G.M()) / 4 / 8 // m/(4k) bits, Lemma 8
	recvPR := lowerbound.MaxMachineKnowledge(prRes.Stats, lbg.G.N())
	t.Rows = append(t.Rows, []string{
		"pagerank/H", itoa(lbg.G.N()), "8", i64(recvPR), f64(icPR),
		f64(float64(recvPR) / icPR),
	})
	t.Notes = append(t.Notes,
		"recv/IC >= 1 in all rows: no machine solved its share with less information than the GLBT says it must acquire",
		"the polylog-sized ratio is the gap the Õ/Ω̃ notation hides")
	return t, nil
}
