// Package kmachine is a Go library reproducing "On the Distributed
// Complexity of Large-Scale Graph Computations" (Pandurangan, Robinson,
// Scquizzato; SPAA 2018): the k-machine model simulator, the paper's
// PageRank and triangle-enumeration algorithms with the prior-work
// baselines they improve upon, distributed sorting and connectivity, the
// General Lower Bound Theorem calculator, and the lower-bound
// constructions (the Figure-1 graph, revealed-path and induced-edge
// concentration experiments).
//
// This root package is the user-facing API: it re-exports the stable
// types and wraps the common entry points. The implementation lives in
// the internal packages (core, transport, algo, graph, gen, partition,
// routing, pagerank, triangle, dsort, conncomp, infotheory,
// lowerbound); see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction results.
//
// Every distributed algorithm is registered once in the internal/algo
// registry and runs on every substrate — the in-process loopback, real
// TCP sockets, and the standalone multi-process node runtime
// (cmd/kmnode) — with bit-identical Stats and outputs; Algorithms
// lists the registered names.
//
// Quick start:
//
//	g := kmachine.Gnp(1000, 0.01, 42)          // an Erdős–Rényi graph
//	p := kmachine.RandomVertexPartition(g, 16, 7)
//	res, err := kmachine.PageRank(p, kmachine.PageRankConfig{Eps: 0.15})
//	// res.Estimate[v] approximates PageRank(v); res.Stats.Rounds is the
//	// measured round complexity (Õ(n/k²), Theorem 4).
package kmachine

import (
	"context"
	"io"
	"time"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/conncomp"
	"kmachine/internal/core"
	"kmachine/internal/dsort"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/infotheory"
	"kmachine/internal/obs"
	"kmachine/internal/pagerank"
	"kmachine/internal/partition"
	"kmachine/internal/transport"
	"kmachine/internal/triangle"
)

// Algorithms returns the names of every algorithm registered in the
// unified driver layer (internal/algo), sorted. Each of them runs on
// all execution substrates — TransportInMem, TransportTCP, and the
// standalone node runtime behind cmd/kmnode — with bit-identical
// measured Stats and outputs.
func Algorithms() []string { return algo.Names() }

// Graph is an immutable CSR graph (see internal/graph).
type Graph = graph.Graph

// Triangle is a set of three mutually adjacent vertices, A < B < C.
type Triangle = graph.Triangle

// Triad is an open triad: Center adjacent to Left and Right, which are
// not adjacent to each other.
type Triad = graph.Triad

// VertexPartition is a random vertex partition of a graph over k
// machines (paper §1.1).
type VertexPartition = partition.VertexPartition

// Stats is the measured communication profile of a distributed run:
// rounds (the paper's T), messages, words, and per-machine totals.
type Stats = core.Stats

// Recorder receives wall-clock phase spans from an instrumented run
// (see RunConfig.Recorder); Trace is the standard implementation and
// TraceSpan one recorded interval (see internal/obs for the span
// vocabulary: compute, barrier, exchange, and per-peer frame phases).
type (
	Recorder  = obs.Recorder
	Trace     = obs.Trace
	TraceSpan = obs.Span
)

// NewTrace returns the standard ring-buffer Recorder: capacity spans of
// preallocated storage (<= 0 selects obs.DefaultTraceSpans) and, when
// k > 0, per-peer wire counters for a k-machine cluster. Recording is
// concurrency-safe and allocation-free; read the result with
// Trace.Spans, Trace.Counters, WriteChromeTrace, or Summarize.
func NewTrace(capacity, k int) *Trace { return obs.NewTrace(capacity, k) }

// WriteChromeTrace writes spans as Chrome trace-event JSON, the format
// chrome://tracing and Perfetto open directly.
func WriteChromeTrace(w io.Writer, spans []TraceSpan) error {
	return obs.WriteChromeTrace(w, spans)
}

// Summarize condenses a trace into per-phase aggregates, wall-clock,
// and span coverage (see obs.RunSummary).
func Summarize(spans []TraceSpan) obs.RunSummary { return obs.Summarize(spans) }

// Bound is one instantiation of the General Lower Bound Theorem.
type Bound = infotheory.Bound

// NewGraphBuilder returns a builder for an n-vertex graph.
func NewGraphBuilder(n int, directed bool) *graph.Builder {
	return graph.NewBuilder(n, directed)
}

// Gnp samples an undirected Erdős–Rényi G(n, p) graph.
func Gnp(n int, p float64, seed uint64) *Graph { return gen.Gnp(n, p, seed) }

// DirectedGnp samples a directed G(n, p) graph.
func DirectedGnp(n int, p float64, seed uint64) *Graph { return gen.DirectedGnp(n, p, seed) }

// PowerLaw grows a preferential-attachment graph with heavy-tailed
// degrees (the regime where the paper's proxy machinery matters).
func PowerLaw(n, attach int, seed uint64) *Graph {
	return gen.PreferentialAttachment(n, attach, seed)
}

// Star returns the undirected star K_{1,n-1} with hub 0.
func Star(n int) *Graph { return gen.Star(n) }

// LowerBoundGraph builds the paper's Figure-1 PageRank lower-bound graph
// with q weakly connected paths.
func LowerBoundGraph(q int, seed uint64) *gen.LowerBound { return gen.LowerBoundGraph(q, seed) }

// RandomVertexPartition hashes the vertices of g onto k machines — the
// input distribution of the k-machine model.
func RandomVertexPartition(g *Graph, k int, seed uint64) *VertexPartition {
	return partition.NewRVP(g, k, seed)
}

// CongestedCliquePartition puts vertex v on machine v (k = n), the model
// of Corollary 1.
func CongestedCliquePartition(g *Graph) *VertexPartition { return partition.NewIdentity(g) }

// DefaultBandwidth returns the per-link bandwidth (words/round) the
// experiments use for an n-vertex input: Θ(log n) words, i.e.
// B = Θ(log² n) bits.
func DefaultBandwidth(n int) int { return core.DefaultBandwidth(n) }

// TransportKind names the substrate envelopes travel on.
type TransportKind = transport.Kind

const (
	// TransportInMem is the in-process loopback (the default).
	TransportInMem = transport.InMem
	// TransportTCP runs every machine as its own listener+dialer over
	// loopback TCP: every envelope crosses a real socket as a binary
	// frame, and every superstep ends with a coordinator-driven
	// barrier. Measured Stats are bit-identical to TransportInMem — the
	// cost accounting happens in core before envelopes reach a
	// transport.
	TransportTCP = transport.TCP
)

// RunConfig carries the execution-substrate options shared by all
// distributed entry points; algorithm configs embed it.
type RunConfig struct {
	// Transport selects the envelope substrate; empty means
	// TransportInMem.
	Transport TransportKind
	// DropPerSuperstep disables Stats.PerSuperstep retention — the only
	// Stats component that grows with the superstep count — keeping
	// long runs' memory footprint constant. All other Stats fields are
	// unaffected.
	DropPerSuperstep bool
	// Context cancels the run: the cluster observes it between
	// superstep phases and every transport operation is bounded by it,
	// so canceling aborts the computation with a wrapped context error
	// instead of running (or hanging) to completion. nil means
	// context.Background.
	Context context.Context
	// SuperstepTimeout bounds each superstep's cross-machine phases: on
	// socket substrates a machine that crashes or wedges mid-superstep
	// surfaces as a machine-attributed error within the timeout instead
	// of hanging the cluster. 0 means no deadline. The happy path —
	// Stats, outputs, determinism — is identical with or without one.
	SuperstepTimeout time.Duration
	// Recorder, when non-nil, receives wall-clock phase spans from the
	// run: per machine and superstep, compute (the Step call),
	// barrier-wait (waiting for the slowest machine), and exchange (the
	// transport moving the batched envelopes), plus per-peer frame spans
	// on socket substrates. Use NewTrace for the standard ring-buffer
	// implementation and WriteChromeTrace / Summarize to read the result
	// out. Spans measure time only: Stats, outputs, and determinism
	// hashes are identical with or without a recorder, and nil (the
	// default) keeps the engine on its zero-allocation span-free path.
	Recorder Recorder
	// Streaming opts the run into streaming supersteps: on transports
	// with the capability (TCP; the loopback stages without wire),
	// machines that call the streaming emit API hand finished per-peer
	// batches to the transport mid-superstep, overlapping compute with
	// communication. Purely a scheduling knob: Stats, outputs, and
	// determinism hashes are bit-identical with it on or off, and
	// machines that never emit eagerly run exactly as before. Default
	// off.
	Streaming bool
	// CheckpointEvery opts the run into per-superstep checkpointing and
	// machine-failure recovery: machine state is captured every
	// CheckpointEvery supersteps and a transport-level machine loss is
	// survived by installing a replacement from the last checkpoint
	// instead of failing the run (up to core.DefaultMaxRecoveries
	// times). Stats, outputs, and hashes of a recovered run are
	// bit-identical to an unkilled one. 0 (the default) keeps the
	// fail-fast behaviour and the zero-overhead path. Requires every
	// machine to implement core.Snapshotter; forces lockstep supersteps.
	CheckpointEvery int
	// CheckpointDir persists checkpoints to disk (two most recent
	// retained) instead of the default in-memory ring. Only meaningful
	// with CheckpointEvery > 0.
	CheckpointDir string
}

// coreConfig is the shared translation of a RunConfig into the
// substrate options of a core.Config.
func (rc RunConfig) coreConfig(k, bandwidth int, seed uint64) core.Config {
	cfg := core.Config{
		K:                k,
		Bandwidth:        bandwidth,
		Seed:             seed,
		Transport:        rc.Transport,
		DropPerSuperstep: rc.DropPerSuperstep,
		Context:          rc.Context,
		SuperstepTimeout: rc.SuperstepTimeout,
		Recorder:         rc.Recorder,
		Streaming:        rc.Streaming,
	}
	if rc.CheckpointEvery > 0 {
		var sink core.CheckpointSink = core.NewMemorySink(2)
		if rc.CheckpointDir != "" {
			sink = core.NewFileSink(rc.CheckpointDir)
		}
		cfg.Checkpoint = core.CheckpointPolicy{Every: rc.CheckpointEvery, Sink: sink}
		cfg.Streaming = false
	}
	return cfg
}

// PageRankConfig configures a distributed PageRank run.
type PageRankConfig struct {
	RunConfig
	// Eps is the reset probability; 0 means 0.15.
	Eps float64
	// Bandwidth overrides the per-link words/round; 0 means
	// DefaultBandwidth(n).
	Bandwidth int
	// Seed drives all machine randomness.
	Seed uint64
	// Tokens and Iterations override the c·log n / Θ(log n / eps)
	// defaults when nonzero.
	Tokens     int
	Iterations int
	// Baseline selects the Õ(n/k) conversion-style algorithm of Klauck
	// et al. instead of the paper's Õ(n/k²) Algorithm 1.
	Baseline bool
}

// PageRankResult is the outcome of a distributed PageRank run.
type PageRankResult = pagerank.Result

// PageRank runs the paper's Algorithm 1 (or the baseline) on a
// partitioned graph and returns per-vertex estimates plus measured
// communication statistics.
func PageRank(p *VertexPartition, cfg PageRankConfig) (*PageRankResult, error) {
	if cfg.Eps == 0 {
		cfg.Eps = 0.15
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = core.DefaultBandwidth(p.G.N())
	}
	opts := pagerank.AlgorithmOne(cfg.Eps)
	if cfg.Baseline {
		opts = pagerank.ConversionBaseline(cfg.Eps)
	}
	opts.Tokens = cfg.Tokens
	opts.Iterations = cfg.Iterations
	return pagerank.Run(p, cfg.coreConfig(p.K, cfg.Bandwidth, cfg.Seed), opts)
}

// SequentialPageRank returns the exact PageRank vector by power
// iteration (the ground truth the distributed estimates approximate).
func SequentialPageRank(g *Graph, eps float64) []float64 {
	opts := graph.DefaultPageRankOptions()
	if eps > 0 {
		opts.Eps = eps
	}
	return graph.PowerIterationPageRank(g, opts)
}

// TriangleConfig configures a distributed triangle enumeration.
type TriangleConfig struct {
	RunConfig
	// Bandwidth overrides the per-link words/round; 0 means default.
	Bandwidth int
	// Seed drives all machine randomness.
	Seed uint64
	// Collect materialises the full triangle list in the result.
	Collect bool
	// Baseline selects the Õ(m·n^{1/3}/k²) conversion-style TriPartition
	// of Klauck et al. / Dolev et al. instead of the paper's
	// Õ(m/k^{5/3} + n/k^{4/3}) algorithm.
	Baseline bool
}

// TriangleResult is the outcome of a distributed enumeration.
type TriangleResult = triangle.Result

// Triangles enumerates all triangles of the partitioned graph; every
// triangle is output by exactly one machine.
func Triangles(p *VertexPartition, cfg TriangleConfig) (*TriangleResult, error) {
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = core.DefaultBandwidth(p.G.N())
	}
	ccfg := cfg.coreConfig(p.K, cfg.Bandwidth, cfg.Seed)
	if cfg.Baseline {
		return triangle.RunBaseline(p, ccfg, triangle.Options{Collect: cfg.Collect})
	}
	opts := triangle.AlgorithmOptions()
	opts.Collect = cfg.Collect
	return triangle.Run(p, ccfg, opts)
}

// OpenTriads enumerates all open triads (three vertices, exactly two
// edges) using the same color-partition machinery (paper §1.2).
func OpenTriads(p *VertexPartition, cfg TriangleConfig) (*TriangleResult, error) {
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = core.DefaultBandwidth(p.G.N())
	}
	opts := triangle.AlgorithmOptions()
	opts.Collect = cfg.Collect
	opts.Triads = true
	return triangle.Run(p, cfg.coreConfig(p.K, cfg.Bandwidth, cfg.Seed), opts)
}

// Clique4 is a set of four mutually adjacent vertices, A < B < C < D.
type Clique4 = graph.Clique4

// Clique4Result is the outcome of a distributed 4-clique enumeration.
type Clique4Result = triangle.Clique4Result

// Cliques4 enumerates all 4-cliques of the partitioned graph — the
// paper's §1.2 generalization of the triangle technique to larger
// subgraphs (c = ⌊k^{1/4}⌋ color classes, quadruple machines, edge
// proxies).
func Cliques4(p *VertexPartition, cfg TriangleConfig) (*Clique4Result, error) {
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = core.DefaultBandwidth(p.G.N())
	}
	opts := triangle.AlgorithmOptions()
	opts.Collect = cfg.Collect
	return triangle.RunCliques4(p, cfg.coreConfig(p.K, cfg.Bandwidth, cfg.Seed), opts)
}

// SortResult is the outcome of a distributed sort.
type SortResult = dsort.Result

// Sort sorts n uniformly random keys distributed over k machines so that
// machine i ends with the i-th block of order statistics (§1.3; the GLBT
// gives Ω̃(n/k²) and this matches it).
func Sort(n, k int, bandwidth int, seed uint64) (*SortResult, error) {
	return SortOver(RunConfig{}, n, k, bandwidth, seed)
}

// SortOver is Sort over an explicit substrate (RunConfig.Transport).
func SortOver(rc RunConfig, n, k int, bandwidth int, seed uint64) (*SortResult, error) {
	in := dsort.RandomInput(n, k, seed, dsort.UniformKeys)
	if bandwidth == 0 {
		bandwidth = core.DefaultBandwidth(n)
	}
	return dsort.Run(in, rc.coreConfig(k, bandwidth, seed+1), 0)
}

// ComponentsResult is the outcome of a connectivity run.
type ComponentsResult = conncomp.Result

// ConnectedComponents labels every vertex with the minimum vertex ID of
// its component.
func ConnectedComponents(p *VertexPartition, bandwidth int, seed uint64) (*ComponentsResult, error) {
	return ConnectedComponentsOver(RunConfig{}, p, bandwidth, seed)
}

// ConnectedComponentsOver is ConnectedComponents over an explicit
// substrate (RunConfig.Transport).
func ConnectedComponentsOver(rc RunConfig, p *VertexPartition, bandwidth int, seed uint64) (*ComponentsResult, error) {
	if bandwidth == 0 {
		bandwidth = core.DefaultBandwidth(p.G.N())
	}
	return conncomp.Run(p, rc.coreConfig(p.K, bandwidth, seed))
}

// PageRankLowerBound returns Theorem 2's Ω(n/(B·k²)) instantiation of
// the General Lower Bound Theorem (bBits = link bandwidth in bits).
func PageRankLowerBound(n, k, bBits int) Bound { return infotheory.PageRankBound(n, k, bBits) }

// TriangleLowerBound returns Theorem 3's Ω(n²/(B·k^{5/3}))
// instantiation; pass t <= 0 for the G(n,1/2) expected triangle count.
func TriangleLowerBound(n, k, bBits int, t float64) Bound {
	return infotheory.TriangleBound(n, k, bBits, t)
}

// SortingLowerBound returns the §1.3 Ω(n/(B·k²)) sorting instantiation.
func SortingLowerBound(n, k, bBits int) Bound { return infotheory.SortingBound(n, k, bBits) }
