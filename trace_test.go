package kmachine_test

// Integration suite for the observability plane: a live trace recorder
// attached to real runs must (a) not perturb the model-level Stats at
// all — instrumentation reads the computation, it is not part of it —
// (b) produce a timeline whose spans explain essentially all of the
// run's wall-clock, and (c) have the same *shape* on every substrate
// (one compute and one barrier span per machine per superstep), because
// the phases are properties of the superstep protocol, not of the
// transport. The TCP cases run the full socket pipeline with the
// recorder hot, which is this suite's race-detector coverage for the
// concurrent Record path (CI runs the package under -race).

import (
	"bytes"
	"encoding/json"
	"testing"

	"kmachine"
	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/obs"
	"kmachine/internal/transport"
)

// tracedRun executes pagerank at k=8 on the given substrate with a
// fresh trace attached and returns the outcome plus the trace.
func tracedRun(t *testing.T, kind transport.Kind) (*algo.Outcome, *obs.Trace) {
	t.Helper()
	entry, ok := algo.Lookup("pagerank")
	if !ok {
		t.Fatal("pagerank not registered")
	}
	tr := obs.NewTrace(0, 8)
	out, err := entry.Run(algo.Problem{N: 200, EdgeP: 0.05, K: 8, Seed: 41, Recorder: tr}, kind)
	if err != nil {
		t.Fatalf("pagerank on %s: %v", kind, err)
	}
	return out, tr
}

// TestTracedRunStatsInvariant: attaching a recorder must not change a
// single model-level number — same Rounds/Words/Messages/hash as the
// uninstrumented run, on loopback and over sockets.
func TestTracedRunStatsInvariant(t *testing.T) {
	entry, _ := algo.Lookup("pagerank")
	for _, kind := range []transport.Kind{transport.InMem, transport.TCP} {
		prob := algo.Problem{N: 200, EdgeP: 0.05, K: 8, Seed: 41}
		plain, err := entry.Run(prob, kind)
		if err != nil {
			t.Fatalf("plain run on %s: %v", kind, err)
		}
		traced, tr := tracedRun(t, kind)
		if traced.Hash != plain.Hash {
			t.Errorf("%s: output hash changed under tracing: %016x vs %016x", kind, traced.Hash, plain.Hash)
		}
		sameStats(t, string(kind)+" traced-vs-plain", traced.Stats, plain.Stats)
		if c := tr.Counters(); c.Total == 0 {
			t.Errorf("%s: trace recorded no spans", kind)
		}
	}
}

// TestTracedRunCoverageAndShape: the timeline must explain the run
// (coverage close to 1) and carry the protocol's span shape — k compute
// and k barrier spans per superstep on every substrate.
func TestTracedRunCoverageAndShape(t *testing.T) {
	for _, kind := range []transport.Kind{transport.InMem, transport.TCP} {
		out, tr := tracedRun(t, kind)
		spans := tr.Spans()
		sum := obs.Summarize(spans)
		// The trace may see one superstep more than Stats counts: the
		// final round, where every machine returns halt, still runs a
		// compute and barrier phase but performs no accounted exchange.
		if sum.Supersteps != out.Stats.Supersteps && sum.Supersteps != out.Stats.Supersteps+1 {
			t.Errorf("%s: trace saw %d supersteps, stats say %d", kind, sum.Supersteps, out.Stats.Supersteps)
		}
		// The acceptance bar is 0.95 on a socket run; loopback is
		// denser still. Leave slack for scheduler noise on tiny runs.
		if sum.Coverage < 0.90 {
			t.Errorf("%s: spans cover only %.1f%% of wall-clock", kind, 100*sum.Coverage)
		}
		const k = 8
		wantPerPhase := k * sum.Supersteps
		if sum.Compute.Count != wantPerPhase {
			t.Errorf("%s: %d compute spans, want k×supersteps = %d", kind, sum.Compute.Count, wantPerPhase)
		}
		if sum.Barrier.Count != wantPerPhase {
			t.Errorf("%s: %d barrier spans, want k×supersteps = %d", kind, sum.Barrier.Count, wantPerPhase)
		}
		if sum.Exchange.Count == 0 {
			t.Errorf("%s: no exchange spans", kind)
		}
		if kind == transport.TCP {
			// The socket pipeline's frame spans carry the wire detail:
			// bytes must be attributed to real peers, never to self.
			c := tr.Counters()
			if c.FramesSent == 0 || c.BytesSent == 0 {
				t.Errorf("tcp: no frame telemetry (frames=%d bytes=%d)", c.FramesSent, c.BytesSent)
			}
			for peer, pc := range c.PerPeer {
				_ = peer
				if pc.FramesSent < 0 || pc.FramesRecv < 0 {
					t.Errorf("tcp: negative per-peer counters: %+v", pc)
				}
			}
		}
	}
}

// TestPublicAPITraceRoundTrip drives the whole observability surface
// through the public package: run with a Trace via RunConfig, export
// Chrome JSON, parse it back, and cross-check against Summarize.
func TestPublicAPITraceRoundTrip(t *testing.T) {
	tr := kmachine.NewTrace(0, 4)
	g := kmachine.Gnp(120, 0.05, 11)
	p := kmachine.RandomVertexPartition(g, 4, 11)
	_, err := kmachine.PageRank(p, kmachine.PageRankConfig{
		RunConfig: kmachine.RunConfig{Recorder: tr},
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded through the public RunConfig knob")
	}
	var buf bytes.Buffer
	if err := kmachine.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != len(spans) {
		t.Errorf("%d complete events for %d spans", complete, len(spans))
	}
	if sum := kmachine.Summarize(spans); sum.Supersteps == 0 || sum.Coverage <= 0 {
		t.Errorf("degenerate summary: %+v", sum)
	}
}
