package kmachine_test

// Sharded-input equivalence suite: the partition-local setup path
// (Problem.Sharded, Problem.InputPath) must be invisible to the
// algorithms. For every registry entry, a run whose machines build
// their own CSR shards — by replaying the generator's per-row canonical
// stream, or by ingesting an edge-list file — must produce bit-identical
// Stats and output hashes to the run that materialises the whole graph
// and carves views out of it. This is the executable form of the
// paper's input assumption (§1.1): the vertices are distributed by the
// random hash partition *before* the computation starts, and nothing
// downstream can tell how they got there.

import (
	"testing"

	"kmachine/internal/algo"
	_ "kmachine/internal/algo/all"
	"kmachine/internal/transport"
)

// TestRegistryShardedEquivalence runs every algorithm full vs sharded
// on the in-process substrate and through the standalone node runtime
// (where the per-process memory win actually lands: each node process
// builds only its own shard).
func TestRegistryShardedEquivalence(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			entry, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("registry lost %q between Names and Lookup", name)
			}
			prob := suiteProblem(name)

			full, err := entry.Run(prob, transport.InMem)
			if err != nil {
				t.Fatalf("full run: %v", err)
			}

			sharded := prob
			sharded.Sharded = true
			sh, err := entry.Run(sharded, transport.InMem)
			if err != nil {
				t.Fatalf("sharded run: %v", err)
			}
			sameStats(t, "sharded-vs-full", sh.Stats, full.Stats)
			if sh.Hash != full.Hash {
				t.Errorf("output hash sharded %016x, full %016x", sh.Hash, full.Hash)
			}

			node, err := entry.RunNodeLocal(sharded)
			if err != nil {
				t.Fatalf("sharded node runtime run: %v", err)
			}
			sameStats(t, "sharded-node-vs-full", node.Stats, full.Stats)
			if node.Hash != full.Hash {
				t.Errorf("output hash sharded node %016x, full %016x", node.Hash, full.Hash)
			}
		})
	}
}

// TestRegistryEdgeListEquivalence feeds the checked-in sample edge list
// (generated from Gnp(300, 0.03, 9)) to the graph-input algorithms
// through both file paths — whole-file materialisation and per-machine
// streaming ingest — and requires both to match the generator run that
// produced the file. Covers the full 2×2 of {generated, file} ×
// {materialised, sharded}.
func TestRegistryEdgeListEquivalence(t *testing.T) {
	base := algo.Problem{N: 300, EdgeP: 0.03, K: 8, Seed: 9}
	for _, name := range []string{"pagerank", "triangle", "conncomp"} {
		t.Run(name, func(t *testing.T) {
			entry, ok := algo.Lookup(name)
			if !ok {
				t.Fatalf("registry has no %q", name)
			}
			gen, err := entry.Run(base, transport.InMem)
			if err != nil {
				t.Fatalf("generator run: %v", err)
			}

			fromFile := base
			fromFile.InputPath = "testdata/sample_edges.txt"
			file, err := entry.Run(fromFile, transport.InMem)
			if err != nil {
				t.Fatalf("file run: %v", err)
			}
			sameStats(t, "file-vs-generator", file.Stats, gen.Stats)
			if file.Hash != gen.Hash {
				t.Errorf("output hash from file %016x, from generator %016x", file.Hash, gen.Hash)
			}

			ingested := fromFile
			ingested.Sharded = true
			ing, err := entry.Run(ingested, transport.InMem)
			if err != nil {
				t.Fatalf("sharded ingest run: %v", err)
			}
			sameStats(t, "ingest-vs-generator", ing.Stats, gen.Stats)
			if ing.Hash != gen.Hash {
				t.Errorf("output hash from sharded ingest %016x, from generator %016x", ing.Hash, gen.Hash)
			}
			if ing.SetupTime <= 0 {
				t.Errorf("sharded ingest run recorded no SetupTime")
			}
			if ing.ExecTime <= 0 {
				t.Errorf("sharded ingest run recorded no ExecTime")
			}
		})
	}
}
