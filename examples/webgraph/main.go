// Webgraph: the paper's motivating workload for PageRank (§1, §1.5) —
// rank the pages of a synthetic web-like graph whose in-degrees are
// heavy-tailed, and show why Algorithm 1's congestion machinery matters:
// the conversion-style baseline of Klauck et al. pays Θ(k)× more rounds
// funnelling per-edge token messages into the home machines of popular
// pages.
package main

import (
	"fmt"
	"log"
	"sort"

	"kmachine"
)

// syntheticWeb builds a directed graph with power-law in-degrees: each
// new page links to `links` existing pages chosen by preferential
// attachment (the classic web growth model), and every page also links
// to one of three "portal" pages — the hubs whose home machines the
// naive baseline congests.
func syntheticWeb(n, links int, seed uint64) *kmachine.Graph {
	// Grow an undirected preferential-attachment skeleton, then orient
	// every edge from the newer page to the older one ("citing" links).
	skeleton := kmachine.PowerLaw(n, links, seed)
	b := kmachine.NewGraphBuilder(n, true)
	skeleton.Edges(func(u, v int32) bool {
		newer, older := u, v
		if newer < older {
			newer, older = older, newer
		}
		b.AddEdge(int(newer), int(older))
		return true
	})
	for page := 3; page < n; page++ {
		b.AddEdge(page, page%3) // pages 0-2 are the portals
		if page%7 == 0 {
			b.AddEdge(page%3, page) // portals link back: random-walk mass keeps circulating
		}
	}
	return b.Build()
}

func main() {
	const (
		n    = 3000
		k    = 32
		seed = 7
	)
	g := syntheticWeb(n, 3, seed)
	p := kmachine.RandomVertexPartition(g, k, seed+1)
	fmt.Printf("synthetic web: %d pages, %d links, max in-degree %d\n\n", g.N(), g.M(), maxInDegree(g))

	// Bandwidth 2 words/round keeps B = Θ(polylog n) while making the
	// per-link congestion visible at this laptop scale; tokens stay
	// below k so vertices start light (the Theorem 2 regime k = Ω(log²n)).
	cfg := kmachine.PageRankConfig{Eps: 0.15, Seed: seed + 2, Tokens: 8, Iterations: 25, Bandwidth: 2}
	alg, err := kmachine.PageRank(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Baseline = true
	base, err := kmachine.PageRank(p, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Algorithm 1 (Õ(n/k²)):        %6d rounds, %8d messages\n", alg.Stats.Rounds, alg.Stats.Messages)
	fmt.Printf("conversion baseline (Õ(n/k)): %6d rounds, %8d messages\n", base.Stats.Rounds, base.Stats.Messages)
	fmt.Printf("speedup: %.1fx on this benign instance — the bounds are worst-case;\n", float64(base.Stats.Rounds)/float64(alg.Stats.Rounds))
	fmt.Printf("on adversarial skew the gap is Θ(k) (see `kmbench -run E1,E14`, star workload)\n\n")

	// The ranking itself: top pages by estimated PageRank.
	type page struct {
		id int
		pr float64
	}
	pages := make([]page, g.N())
	for v := range alg.Estimate {
		pages[v] = page{v, alg.Estimate[v]}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].pr > pages[j].pr })
	fmt.Println("top 10 pages (old pages accumulate rank, as expected under preferential attachment):")
	for i := 0; i < 10; i++ {
		fmt.Printf("  #%2d  page %4d  pagerank %.2e  in-degree %d\n",
			i+1, pages[i].id, pages[i].pr, g.InDegree(pages[i].id))
	}
}

func maxInDegree(g *kmachine.Graph) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.InDegree(v); d > max {
			max = d
		}
	}
	return max
}
