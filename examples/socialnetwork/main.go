// Socialnetwork: the paper's motivating workloads for triangle and
// open-triad enumeration (§1.5) — community analysis and friend
// recommendation on a social-style graph. Triangles measure cohesion
// (global clustering coefficient); open triads are exactly the
// friend-of-a-friend pairs a recommender would surface.
package main

import (
	"fmt"
	"log"
	"sort"

	"kmachine"
	"kmachine/internal/rng"
)

// socialGraph plants `communities` dense cliques of size `size` and
// sprinkles random inter-community acquaintance edges.
func socialGraph(communities, size, bridges int, seed uint64) *kmachine.Graph {
	n := communities * size
	b := kmachine.NewGraphBuilder(n, false)
	r := rng.New(seed)
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if r.Float64() < 0.7 { // dense but not complete
					b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	for i := 0; i < bridges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u/size != v/size {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func main() {
	const (
		k    = 27
		seed = 11
	)
	g := socialGraph(30, 12, 200, seed)
	p := kmachine.RandomVertexPartition(g, k, seed+1)
	fmt.Printf("social network: %d people, %d friendships, %d machines\n\n", g.N(), g.M(), k)

	tri, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	triads, err := kmachine.OpenTriads(p, kmachine.TriangleConfig{Seed: seed + 3, Collect: true})
	if err != nil {
		log.Fatal(err)
	}

	// Global clustering coefficient = 3·triangles / (triangles·3 + triads)
	// (closed paths over all length-2 paths).
	paths := float64(3*tri.Count + triads.Count)
	fmt.Printf("triangles:   %d (in %d rounds; sequential check: %d)\n",
		tri.Count, tri.Stats.Rounds, g.CountTriangles())
	fmt.Printf("open triads: %d (in %d rounds)\n", triads.Count, triads.Stats.Rounds)
	fmt.Printf("global clustering coefficient: %.3f (high — community structure)\n\n",
		float64(3*tri.Count)/paths)

	// Friend recommendation: the most common open-triad endpoints are
	// the best "people you may know" pairs.
	type pair struct{ a, b int32 }
	counts := map[pair]int{}
	for _, tr := range triads.Triads {
		counts[pair{tr.Left, tr.Right}]++
	}
	type rec struct {
		p pair
		c int
	}
	recs := make([]rec, 0, len(counts))
	for pr, c := range counts {
		recs = append(recs, rec{pr, c})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].c != recs[j].c {
			return recs[i].c > recs[j].c
		}
		if recs[i].p.a != recs[j].p.a {
			return recs[i].p.a < recs[j].p.a
		}
		return recs[i].p.b < recs[j].p.b
	})
	fmt.Println("top friend recommendations (most mutual friends, not yet connected):")
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  %4d — %4d  (%d mutual friends)\n", recs[i].p.a, recs[i].p.b, recs[i].c)
	}
}
