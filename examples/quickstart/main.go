// Quickstart: partition a random graph over k machines, compute PageRank
// with the paper's Algorithm 1 and enumerate all triangles, printing the
// measured round complexities next to the theorems' predictions.
package main

import (
	"fmt"
	"log"

	"kmachine"
)

func main() {
	const (
		n    = 1000
		k    = 27
		seed = 42
	)

	// An Erdős–Rényi graph with average degree ~16, hashed onto k
	// machines by the random vertex partition (paper §1.1).
	g := kmachine.Gnp(n, 16.0/n, seed)
	p := kmachine.RandomVertexPartition(g, k, seed+1)
	fmt.Printf("graph: n=%d m=%d, partitioned over k=%d machines\n\n", g.N(), g.M(), k)

	// PageRank in Õ(n/k²) rounds (Theorem 4).
	pr, err := kmachine.PageRank(p, kmachine.PageRankConfig{Eps: 0.15, Seed: seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	best := 0
	for v := range pr.Estimate {
		if pr.Estimate[v] > pr.Estimate[best] {
			best = v
		}
	}
	fmt.Printf("pagerank:  %d rounds, %d messages\n", pr.Stats.Rounds, pr.Stats.Messages)
	fmt.Printf("           highest-ranked vertex: %d (estimate %.2e)\n", best, pr.Estimate[best])
	lbPR := kmachine.PageRankLowerBound(n, k, 100)
	fmt.Printf("           Theorem 2: some machine must gain %.3g bits -> Ω(%.3g) rounds at B=100 bits\n\n",
		lbPR.IC, lbPR.Rounds)

	// Triangle enumeration in Õ(m/k^{5/3} + n/k^{4/3}) rounds (Theorem 5).
	tr, err := kmachine.Triangles(p, kmachine.TriangleConfig{Seed: seed + 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d found in %d rounds (sequential check: %d)\n",
		tr.Count, tr.Stats.Rounds, g.CountTriangles())
	lbTR := kmachine.TriangleLowerBound(n, k, 100, float64(tr.Count))
	fmt.Printf("           Theorem 3: some machine must gain %.3g bits -> Ω(%.3g) rounds at B=100 bits\n",
		lbTR.IC, lbTR.Rounds)
}
