// Sorting: the §1.3 cookbook application of the General Lower Bound
// Theorem — n randomly distributed keys must end up as exact blocks of
// order statistics, one block per machine. The GLBT gives Ω̃(n/k²); the
// sample-sort implementation matches it, and this example shows the k²
// scaling directly.
package main

import (
	"fmt"
	"log"

	"kmachine"
)

func main() {
	const n = 100000
	fmt.Printf("sorting %d random keys in the k-machine model\n\n", n)
	fmt.Printf("%4s  %8s  %14s  %12s\n", "k", "rounds", "rounds·k²/n", "GLBT Ω(n/Bk²)")

	for _, k := range []int{8, 16, 32} {
		res, err := kmachine.Sort(n, k, 8, uint64(100+k))
		if err != nil {
			log.Fatal(err)
		}
		lb := kmachine.SortingLowerBound(n, k, 8*17)
		fmt.Printf("%4d  %8d  %14.2f  %12.1f\n",
			k, res.Stats.Rounds,
			float64(res.Stats.Rounds)*float64(k*k)/float64(n), lb.Rounds)

		// Verify the contract on the first and last machines: sorted
		// blocks, block i entirely below block i+1.
		for i := 1; i < k; i++ {
			prev, cur := res.Blocks[i-1], res.Blocks[i]
			if len(prev) > 0 && len(cur) > 0 && prev[len(prev)-1] > cur[0] {
				log.Fatalf("k=%d: block %d overlaps block %d", k, i-1, i)
			}
		}
	}
	fmt.Println("\nrounds·k²/n stays ~flat: the Õ(n/k²) shape of §1.3, matching the GLBT bound.")
}
