// Lowerbound: a tour of the paper's Section 2 — the Figure-1 graph, the
// Lemma 4 PageRank separation, the Lemma 5 bound on what the random
// vertex partition reveals for free, and the General Lower Bound Theorem
// calculator applied in "cookbook" fashion to five problems.
package main

import (
	"fmt"
	"log"

	"kmachine"
	"kmachine/internal/gen"
	"kmachine/internal/graph"
	"kmachine/internal/infotheory"
	"kmachine/internal/lowerbound"
	"kmachine/internal/partition"
)

func main() {
	// --- Figure 1: the lower-bound graph H. ---
	const q = 1000
	lb := kmachine.LowerBoundGraph(q, 3)
	fmt.Printf("Figure-1 graph H: q=%d paths, n=%d vertices, m=%d edges\n", q, lb.G.N(), lb.G.M())

	// --- Lemma 4: flipping one direction bit changes PR(v_i) by a
	// constant factor. ---
	const eps = 0.15
	pr := graph.ExpectedVisitPageRank(lb.G, graph.PageRankOptions{Eps: eps, Tol: 1e-13, MaxIter: 10000})
	want0, want1 := gen.Lemma4Expected(eps, lb.G.N())
	var got0, got1 float64
	for i := 0; i < q; i++ {
		if lb.Bits[i] {
			got1 = pr[lb.V(i)]
		} else {
			got0 = pr[lb.V(i)]
		}
	}
	fmt.Printf("Lemma 4 at eps=%.2f: PR(v|b=0)=%.3e (closed form %.3e), PR(v|b=1)=%.3e (closed form %.3e)\n",
		eps, got0, want0, got1, want1)
	fmt.Printf("               separation ratio %.3f — a correct algorithm must learn every bit\n\n", want1/want0)

	// --- Lemma 5: the RVP reveals almost nothing for free. ---
	for _, k := range []int{8, 16, 32} {
		p := partition.NewRVP(lb.G, k, 17)
		max := lowerbound.MaxRevealedPaths(lb, p)
		fmt.Printf("Lemma 5 at k=%2d: max paths revealed to any machine = %3d of %d (bound ~2q/k² = %.1f)\n",
			k, max, q, 2*float64(q)/float64(k*k))
	}
	fmt.Println()

	// --- The GLBT cookbook (Theorem 1): five problems, one theorem. ---
	const (
		n     = 1_000_000
		k     = 100
		bBits = 400 // Θ(polylog n) link bandwidth
	)
	bounds := []kmachine.Bound{
		infotheory.PageRankBound(n, k, bBits),
		infotheory.TriangleBound(10000, k, bBits, 0),
		infotheory.CongestedCliqueTriangleBound(10000, bBits),
		infotheory.SortingBound(n, k, bBits),
		infotheory.MSTBound(n, k, bBits),
	}
	fmt.Printf("GLBT cookbook (Theorem 1: T = Ω(IC/(B·k))):\n")
	fmt.Printf("  %-38s %14s %14s %12s\n", "problem", "H[Z] bits", "IC bits", "Ω(rounds)")
	for _, b := range bounds {
		fmt.Printf("  %-38s %14.3g %14.3g %12.3g\n", b.Problem, b.HZ, b.IC, b.Rounds)
	}
	fmt.Println("\nEach bound follows from two premises: machines start near-ignorant of Z")
	fmt.Println("(Lemmas 5/10) and producing the output makes one machine IC bits wiser")
	fmt.Println("(Lemmas 7-8/11). Lemma 3 then converts information into rounds.")

	// Sanity: the machinery is live, not hard-coded.
	if bounds[0].Rounds <= 0 {
		log.Fatal("unexpected non-positive bound")
	}
}
